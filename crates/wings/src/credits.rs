use hermes_common::NodeId;

/// Configuration of the credit-based flow controller.
#[derive(Clone, Copy, Debug)]
pub struct CreditConfig {
    /// Credits available per peer (receive-buffer slots at the peer).
    pub credits_per_peer: u32,
    /// Received-message count after which an explicit credit-update message
    /// is owed to the sender (batched explicit returns, paper §4.2).
    pub explicit_return_threshold: u32,
}

impl Default for CreditConfig {
    fn default() -> Self {
        CreditConfig {
            credits_per_peer: 32,
            explicit_return_threshold: 8,
        }
    }
}

/// Credit-based flow control (Kung et al., as used by Wings, paper §4.2).
///
/// A sender spends one credit per message to a peer and stalls when the
/// peer's credits run out, bounding receive-buffer usage. Credits return in
/// two ways:
///
/// * **implicit** — a response message doubles as a credit (HermesKV treats
///   each ACK as the credit update for its INV);
/// * **explicit** — for one-way traffic (VALs), the receiver periodically
///   sends a small credit-update message covering a batch of deliveries.
///
/// # Examples
///
/// ```
/// use hermes_common::NodeId;
/// use hermes_wings::{CreditConfig, CreditFlow};
///
/// let mut flow = CreditFlow::new(2, CreditConfig { credits_per_peer: 1, ..Default::default() });
/// assert!(flow.try_consume(NodeId(1)));
/// assert!(!flow.try_consume(NodeId(1)), "out of credits");
/// flow.on_implicit_credit(NodeId(1));
/// assert!(flow.try_consume(NodeId(1)));
/// ```
#[derive(Debug)]
pub struct CreditFlow {
    cfg: CreditConfig,
    available: Vec<u32>,
    owed: Vec<u32>,
    stalls: u64,
}

impl CreditFlow {
    /// Creates a flow controller for a cluster of `n` peers.
    pub fn new(n: usize, cfg: CreditConfig) -> Self {
        CreditFlow {
            cfg,
            available: vec![cfg.credits_per_peer; n],
            owed: vec![0; n],
            stalls: 0,
        }
    }

    /// Attempts to spend one credit toward `peer`; `false` means the caller
    /// must hold the message (backpressure).
    pub fn try_consume(&mut self, peer: NodeId) -> bool {
        let slot = &mut self.available[peer.index()];
        if *slot == 0 {
            self.stalls += 1;
            return false;
        }
        *slot -= 1;
        true
    }

    /// Credits currently available toward `peer`.
    pub fn available(&self, peer: NodeId) -> u32 {
        self.available[peer.index()]
    }

    /// A response arrived from `peer`: one implicit credit returns.
    pub fn on_implicit_credit(&mut self, peer: NodeId) {
        self.add(peer, 1);
    }

    /// An explicit credit-update message from `peer` returned `n` credits.
    pub fn on_explicit_credits(&mut self, peer: NodeId, n: u32) {
        self.add(peer, n);
    }

    fn add(&mut self, peer: NodeId, n: u32) {
        let slot = &mut self.available[peer.index()];
        *slot = (*slot + n).min(self.cfg.credits_per_peer);
    }

    /// Records the receipt of a one-way message from `peer`; returns
    /// `Some(n)` when an explicit credit update of `n` credits should be
    /// sent back (threshold reached).
    pub fn note_received(&mut self, peer: NodeId) -> Option<u32> {
        let owed = &mut self.owed[peer.index()];
        *owed += 1;
        if *owed >= self.cfg.explicit_return_threshold {
            let n = *owed;
            *owed = 0;
            Some(n)
        } else {
            None
        }
    }

    /// Times `try_consume` failed for lack of credits.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(credits: u32, threshold: u32) -> CreditFlow {
        CreditFlow::new(
            3,
            CreditConfig {
                credits_per_peer: credits,
                explicit_return_threshold: threshold,
            },
        )
    }

    #[test]
    fn credits_bound_outstanding_messages() {
        let mut f = flow(4, 8);
        for _ in 0..4 {
            assert!(f.try_consume(NodeId(1)));
        }
        assert!(!f.try_consume(NodeId(1)));
        assert_eq!(f.stalls(), 1);
        assert_eq!(f.available(NodeId(1)), 0);
        // Other peers unaffected.
        assert!(f.try_consume(NodeId(2)));
    }

    #[test]
    fn implicit_credits_restore_budget() {
        let mut f = flow(1, 8);
        assert!(f.try_consume(NodeId(0)));
        assert!(!f.try_consume(NodeId(0)));
        f.on_implicit_credit(NodeId(0));
        assert!(f.try_consume(NodeId(0)));
    }

    #[test]
    fn credits_never_exceed_cap() {
        let mut f = flow(2, 8);
        f.on_explicit_credits(NodeId(0), 100);
        assert_eq!(f.available(NodeId(0)), 2);
    }

    #[test]
    fn explicit_returns_batch_at_threshold() {
        let mut f = flow(8, 3);
        assert_eq!(f.note_received(NodeId(1)), None);
        assert_eq!(f.note_received(NodeId(1)), None);
        assert_eq!(f.note_received(NodeId(1)), Some(3));
        // Counter reset after emission.
        assert_eq!(f.note_received(NodeId(1)), None);
    }

    #[test]
    fn closed_loop_conservation() {
        // Simulated request/response loop: total in-flight never exceeds the
        // credit budget, and all credits return.
        let mut f = flow(5, 2);
        let mut inflight = 0u32;
        let mut sent = 0;
        for _ in 0..100 {
            while f.try_consume(NodeId(1)) {
                inflight += 1;
                sent += 1;
            }
            assert!(inflight <= 5);
            // Peer responds to everything outstanding.
            for _ in 0..inflight {
                f.on_implicit_credit(NodeId(1));
            }
            inflight = 0;
        }
        assert_eq!(sent, 500);
        assert_eq!(f.available(NodeId(1)), 5);
    }
}
