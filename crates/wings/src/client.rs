//! Wire format for the client-facing RPC port of a replica daemon.
//!
//! The paper's clients talk to HermesKV over the network like any KVS
//! clients (§2.1, §5.2); this module gives the reproduction's `hermesd`
//! daemon the matching wire vocabulary: a request carries the session-local
//! sequence number, the key and the [`ClientOp`]; a response carries the
//! sequence number back with the [`Reply`]. Sessions pipeline by keeping
//! many sequence numbers outstanding per connection; responses return out
//! of order (inter-key concurrency), which is why every response echoes its
//! request's sequence number.
//!
//! Requests and responses ride inside the same `u32` length-prefixed
//! framing as replica-to-replica traffic (`hermes_net::write_frame_to`);
//! this module encodes only the payloads. All integers little-endian.

use bytes::{BufMut, Bytes, BytesMut};
use hermes_common::{ClientOp, Key, Reply, RmwOp, Value};

const REQ_READ: u8 = 0;
const REQ_WRITE: u8 = 1;
const REQ_CAS: u8 = 2;
const REQ_FETCH_ADD: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;

const RSP_READ_OK: u8 = 0;
const RSP_WRITE_OK: u8 = 1;
const RSP_RMW_OK: u8 = 2;
const RSP_CAS_FAILED: u8 = 3;
const RSP_RMW_ABORTED: u8 = 4;
const RSP_NOT_OPERATIONAL: u8 = 5;
const RSP_UNSUPPORTED: u8 = 6;

/// Errors produced when decoding a malformed client request or response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientCodecError {
    /// The buffer ended before the declared layout was complete.
    Truncated,
    /// Unknown request/response tag byte.
    BadTag(u8),
}

impl std::fmt::Display for ClientCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientCodecError::Truncated => write!(f, "client message truncated"),
            ClientCodecError::BadTag(t) => write!(f, "unknown client message tag {t}"),
        }
    }
}

impl std::error::Error for ClientCodecError {}

/// Minimal cursor over a decode buffer.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ClientCodecError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(ClientCodecError::Truncated)?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ClientCodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ClientCodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("sized")))
    }

    fn u64(&mut self) -> Result<u64, ClientCodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("sized")))
    }

    fn value(&mut self) -> Result<Value, ClientCodecError> {
        let len = self.u32()? as usize;
        Ok(Value::from(self.take(len)?.to_vec()))
    }
}

fn put_value(out: &mut BytesMut, v: &Value) {
    out.put_u32_le(v.len() as u32);
    out.put_slice(v.as_bytes());
}

/// Encodes one client request (appending to `out`).
pub fn encode_request(out: &mut BytesMut, seq: u64, key: Key, cop: &ClientOp) {
    out.put_u64_le(seq);
    out.put_u64_le(key.0);
    match cop {
        ClientOp::Read => out.put_u8(REQ_READ),
        ClientOp::Write(v) => {
            out.put_u8(REQ_WRITE);
            put_value(out, v);
        }
        ClientOp::Rmw(RmwOp::CompareAndSwap { expect, new }) => {
            out.put_u8(REQ_CAS);
            put_value(out, expect);
            put_value(out, new);
        }
        ClientOp::Rmw(RmwOp::FetchAdd { delta }) => {
            out.put_u8(REQ_FETCH_ADD);
            out.put_u64_le(*delta);
        }
    }
}

/// Encodes one client request into a fresh buffer.
pub fn encode_request_bytes(seq: u64, key: Key, cop: &ClientOp) -> Bytes {
    let mut out = BytesMut::new();
    encode_request(&mut out, seq, key, cop);
    out.freeze()
}

/// Decodes one client request.
///
/// # Errors
///
/// Returns a [`ClientCodecError`] on truncation or an unknown tag
/// (including the admin [`Request::Shutdown`] tag — use [`decode_any`] to
/// accept both).
pub fn decode_request(buf: &[u8]) -> Result<(u64, Key, ClientOp), ClientCodecError> {
    match decode_any(buf)? {
        Request::Op { seq, key, cop } => Ok((seq, key, cop)),
        Request::Shutdown { .. } => Err(ClientCodecError::BadTag(REQ_SHUTDOWN)),
    }
}

/// Everything a client-port connection can ask of a replica daemon: a data
/// operation, or the administrative shutdown of the whole daemon.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// A key-value operation (the common case).
    Op {
        /// Session-local sequence number echoed by the response.
        seq: u64,
        /// Target key.
        key: Key,
        /// The operation.
        cop: ClientOp,
    },
    /// Ask the daemon to exit cleanly (the shutdown RPC; acknowledged with
    /// a [`Reply::WriteOk`] echoing `seq` before the daemon winds down).
    Shutdown {
        /// Session-local sequence number echoed by the acknowledgement.
        seq: u64,
    },
}

/// Encodes a shutdown request into a fresh buffer.
pub fn encode_shutdown_bytes(seq: u64) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(seq);
    out.put_u64_le(0); // Key slot, unused: keeps one request layout.
    out.put_u8(REQ_SHUTDOWN);
    out.freeze()
}

/// Decodes one client request, admin requests included.
///
/// # Errors
///
/// Returns a [`ClientCodecError`] on truncation or an unknown tag.
pub fn decode_any(buf: &[u8]) -> Result<Request, ClientCodecError> {
    let mut c = Cursor::new(buf);
    let seq = c.u64()?;
    let key = Key(c.u64()?);
    let tag = c.u8()?;
    let cop = match tag {
        REQ_READ => ClientOp::Read,
        REQ_WRITE => ClientOp::Write(c.value()?),
        REQ_CAS => ClientOp::Rmw(RmwOp::CompareAndSwap {
            expect: c.value()?,
            new: c.value()?,
        }),
        REQ_FETCH_ADD => ClientOp::Rmw(RmwOp::FetchAdd { delta: c.u64()? }),
        REQ_SHUTDOWN => return Ok(Request::Shutdown { seq }),
        other => return Err(ClientCodecError::BadTag(other)),
    };
    Ok(Request::Op { seq, key, cop })
}

/// Encodes one client response (appending to `out`).
pub fn encode_reply(out: &mut BytesMut, seq: u64, reply: &Reply) {
    out.put_u64_le(seq);
    match reply {
        Reply::ReadOk(v) => {
            out.put_u8(RSP_READ_OK);
            put_value(out, v);
        }
        Reply::WriteOk => out.put_u8(RSP_WRITE_OK),
        Reply::RmwOk { prior } => {
            out.put_u8(RSP_RMW_OK);
            put_value(out, prior);
        }
        Reply::CasFailed { current } => {
            out.put_u8(RSP_CAS_FAILED);
            put_value(out, current);
        }
        Reply::RmwAborted => out.put_u8(RSP_RMW_ABORTED),
        Reply::NotOperational => out.put_u8(RSP_NOT_OPERATIONAL),
        Reply::Unsupported => out.put_u8(RSP_UNSUPPORTED),
    }
}

/// Encodes one client response into a fresh buffer.
pub fn encode_reply_bytes(seq: u64, reply: &Reply) -> Bytes {
    let mut out = BytesMut::new();
    encode_reply(&mut out, seq, reply);
    out.freeze()
}

/// Decodes one client response.
///
/// # Errors
///
/// Returns a [`ClientCodecError`] on truncation or an unknown tag.
pub fn decode_reply(buf: &[u8]) -> Result<(u64, Reply), ClientCodecError> {
    let mut c = Cursor::new(buf);
    let seq = c.u64()?;
    let tag = c.u8()?;
    let reply = match tag {
        RSP_READ_OK => Reply::ReadOk(c.value()?),
        RSP_WRITE_OK => Reply::WriteOk,
        RSP_RMW_OK => Reply::RmwOk { prior: c.value()? },
        RSP_CAS_FAILED => Reply::CasFailed {
            current: c.value()?,
        },
        RSP_RMW_ABORTED => Reply::RmwAborted,
        RSP_NOT_OPERATIONAL => Reply::NotOperational,
        RSP_UNSUPPORTED => Reply::Unsupported,
        other => return Err(ClientCodecError::BadTag(other)),
    };
    Ok((seq, reply))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_samples() -> Vec<(u64, Key, ClientOp)> {
        vec![
            (0, Key(1), ClientOp::Read),
            (7, Key(u64::MAX), ClientOp::Write(Value::filled(0xCD, 32))),
            (8, Key(2), ClientOp::Write(Value::EMPTY)),
            (
                9,
                Key(3),
                ClientOp::Rmw(RmwOp::CompareAndSwap {
                    expect: Value::EMPTY,
                    new: Value::from_u64(5),
                }),
            ),
            (
                u64::MAX,
                Key(4),
                ClientOp::Rmw(RmwOp::FetchAdd { delta: 123 }),
            ),
        ]
    }

    fn reply_samples() -> Vec<(u64, Reply)> {
        vec![
            (0, Reply::ReadOk(Value::from_u64(9))),
            (1, Reply::ReadOk(Value::EMPTY)),
            (2, Reply::WriteOk),
            (
                3,
                Reply::RmwOk {
                    prior: Value::filled(1, 64),
                },
            ),
            (
                4,
                Reply::CasFailed {
                    current: Value::from_u64(1),
                },
            ),
            (5, Reply::RmwAborted),
            (6, Reply::NotOperational),
            (7, Reply::Unsupported),
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for (seq, key, cop) in request_samples() {
            let encoded = encode_request_bytes(seq, key, &cop);
            assert_eq!(decode_request(&encoded).unwrap(), (seq, key, cop));
        }
    }

    #[test]
    fn replies_roundtrip() {
        for (seq, reply) in reply_samples() {
            let encoded = encode_reply_bytes(seq, &reply);
            assert_eq!(decode_reply(&encoded).unwrap(), (seq, reply));
        }
    }

    #[test]
    fn truncation_errors_everywhere() {
        for (seq, key, cop) in request_samples() {
            let full = encode_request_bytes(seq, key, &cop);
            for cut in 0..full.len() {
                assert_eq!(
                    decode_request(&full[..cut]),
                    Err(ClientCodecError::Truncated),
                    "request cut at {cut}"
                );
            }
        }
        for (seq, reply) in reply_samples() {
            let full = encode_reply_bytes(seq, &reply);
            for cut in 0..full.len() {
                assert_eq!(
                    decode_reply(&full[..cut]),
                    Err(ClientCodecError::Truncated),
                    "reply cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn bad_tags_error() {
        let mut req = encode_request_bytes(1, Key(1), &ClientOp::Read).to_vec();
        req[16] = 99;
        assert_eq!(decode_request(&req), Err(ClientCodecError::BadTag(99)));
        let mut rsp = encode_reply_bytes(1, &Reply::WriteOk).to_vec();
        rsp[8] = 77;
        assert_eq!(decode_reply(&rsp), Err(ClientCodecError::BadTag(77)));
    }

    #[test]
    fn shutdown_request_roundtrips_and_is_rejected_by_the_op_decoder() {
        let frame = encode_shutdown_bytes(17);
        assert_eq!(decode_any(&frame).unwrap(), Request::Shutdown { seq: 17 });
        // The op-only decoder refuses it (callers not expecting admin
        // requests treat it as a protocol error).
        assert_eq!(
            decode_request(&frame),
            Err(ClientCodecError::BadTag(REQ_SHUTDOWN))
        );
        // Data requests decode identically through both entry points.
        let op = encode_request_bytes(5, Key(9), &ClientOp::Read);
        assert_eq!(
            decode_any(&op).unwrap(),
            Request::Op {
                seq: 5,
                key: Key(9),
                cop: ClientOp::Read
            }
        );
    }

    #[test]
    fn declared_value_length_is_bounded_by_buffer() {
        let mut req =
            encode_request_bytes(1, Key(1), &ClientOp::Write(Value::from_u64(1))).to_vec();
        // Inflate the declared value length past the buffer end.
        req[17..21].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&req), Err(ClientCodecError::Truncated));
    }
}
