//! Wire format for the client-facing RPC port of a replica daemon.
//!
//! The paper's clients talk to HermesKV over the network like any KVS
//! clients (§2.1, §5.2); this module gives the reproduction's `hermesd`
//! daemon the matching wire vocabulary: a request carries the session-local
//! sequence number, the key and the [`ClientOp`]; a response carries the
//! sequence number back with the [`Reply`]. Sessions pipeline by keeping
//! many sequence numbers outstanding per connection; responses return out
//! of order (inter-key concurrency), which is why every response echoes its
//! request's sequence number.
//!
//! Requests and responses ride inside the same `u32` length-prefixed
//! framing as replica-to-replica traffic (`hermes_net::write_frame_to`);
//! this module encodes only the payloads. All integers little-endian.

use bytes::{BufMut, Bytes, BytesMut};
use hermes_common::{ClientOp, Key, NodeSet, Reply, RmwOp, TxnAbort, TxnOp, TxnReply, Value};
use hermes_obs::TraceSpan;

const REQ_READ: u8 = 0;
const REQ_WRITE: u8 = 1;
const REQ_CAS: u8 = 2;
const REQ_FETCH_ADD: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;
const REQ_TXN: u8 = 5;
const REQ_STATS: u8 = 6;
const REQ_SUBSCRIBE: u8 = 7;
const REQ_UNSUBSCRIBE: u8 = 8;
const REQ_INVAL_ACK: u8 = 9;
const REQ_METRICS: u8 = 10;
const REQ_TRACES: u8 = 11;

const RSP_READ_OK: u8 = 0;
const RSP_WRITE_OK: u8 = 1;
const RSP_RMW_OK: u8 = 2;
const RSP_CAS_FAILED: u8 = 3;
const RSP_RMW_ABORTED: u8 = 4;
const RSP_NOT_OPERATIONAL: u8 = 5;
const RSP_UNSUPPORTED: u8 = 6;
/// Transaction and stats responses use their own tag space so they can
/// never be mistaken for single-key completions (they ride on dedicated
/// request/response exchanges, not the pipelined session stream).
const RSP_TXN: u8 = 7;
const RSP_STATS: u8 = 8;
/// Server-initiated push frames (invalidation stream) and subscription
/// acknowledgements. They carry no meaningful sequence number (the seq
/// slot is zero for pushes) and are deliberately **not** decodable by
/// [`decode_reply`]: only the superset [`decode_server_frame`] accepts
/// them, so callers that never subscribed keep their strict decoder.
const RSP_INVALIDATE: u8 = 9;
const RSP_SUBSCRIBED: u8 = 10;
const RSP_UNSUBSCRIBED: u8 = 11;
const RSP_FLUSH: u8 = 12;
/// Metrics exposition reply: like stats, a dedicated request/response
/// exchange (never part of the pipelined session stream).
const RSP_METRICS: u8 = 13;
/// Trace-span drain reply: like metrics, a dedicated request/response
/// exchange (never part of the pipelined session stream).
const RSP_TRACES: u8 = 14;

const TXN_MULTI_GET: u8 = 0;
const TXN_MULTI_PUT: u8 = 1;
const TXN_TRANSFER: u8 = 2;

const TXN_COMMITTED: u8 = 0;
const TXN_ABORT_CONFLICT: u8 = 1;
const TXN_ABORT_FUNDS: u8 = 2;
const TXN_ABORT_INVALID: u8 = 3;
const TXN_ABORT_NOT_OPERATIONAL: u8 = 4;
const TXN_ABORT_OVERFLOW: u8 = 5;

/// Errors produced when decoding a malformed client request or response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientCodecError {
    /// The buffer ended before the declared layout was complete.
    Truncated,
    /// Unknown request/response tag byte.
    BadTag(u8),
}

impl std::fmt::Display for ClientCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientCodecError::Truncated => write!(f, "client message truncated"),
            ClientCodecError::BadTag(t) => write!(f, "unknown client message tag {t}"),
        }
    }
}

impl std::error::Error for ClientCodecError {}

/// Minimal cursor over a decode buffer.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ClientCodecError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(ClientCodecError::Truncated)?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ClientCodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ClientCodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("sized")))
    }

    fn u64(&mut self) -> Result<u64, ClientCodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("sized")))
    }

    fn value(&mut self) -> Result<Value, ClientCodecError> {
        let len = self.u32()? as usize;
        Ok(Value::from(self.take(len)?.to_vec()))
    }
}

fn put_value(out: &mut BytesMut, v: &Value) {
    out.put_u32_le(v.len() as u32);
    out.put_slice(v.as_bytes());
}

/// Encodes one client request (appending to `out`).
pub fn encode_request(out: &mut BytesMut, seq: u64, key: Key, cop: &ClientOp) {
    out.put_u64_le(seq);
    out.put_u64_le(key.0);
    match cop {
        ClientOp::Read => out.put_u8(REQ_READ),
        ClientOp::Write(v) => {
            out.put_u8(REQ_WRITE);
            put_value(out, v);
        }
        ClientOp::Rmw(RmwOp::CompareAndSwap { expect, new }) => {
            out.put_u8(REQ_CAS);
            put_value(out, expect);
            put_value(out, new);
        }
        ClientOp::Rmw(RmwOp::FetchAdd { delta }) => {
            out.put_u8(REQ_FETCH_ADD);
            out.put_u64_le(*delta);
        }
    }
}

/// Encodes one client request into a fresh buffer.
pub fn encode_request_bytes(seq: u64, key: Key, cop: &ClientOp) -> Bytes {
    let mut out = BytesMut::new();
    encode_request(&mut out, seq, key, cop);
    out.freeze()
}

/// Decodes one client request.
///
/// # Errors
///
/// Returns a [`ClientCodecError`] on truncation or an unknown tag
/// (including the transaction, stats and admin shutdown tags — use
/// [`decode_any`] to accept those).
pub fn decode_request(buf: &[u8]) -> Result<(u64, Key, ClientOp), ClientCodecError> {
    match decode_any(buf)? {
        Request::Op { seq, key, cop } => Ok((seq, key, cop)),
        Request::Txn { .. } => Err(ClientCodecError::BadTag(REQ_TXN)),
        Request::Stats { .. } => Err(ClientCodecError::BadTag(REQ_STATS)),
        Request::Metrics { .. } => Err(ClientCodecError::BadTag(REQ_METRICS)),
        Request::Traces { .. } => Err(ClientCodecError::BadTag(REQ_TRACES)),
        Request::Shutdown { .. } => Err(ClientCodecError::BadTag(REQ_SHUTDOWN)),
        Request::Subscribe { .. } => Err(ClientCodecError::BadTag(REQ_SUBSCRIBE)),
        Request::Unsubscribe { .. } => Err(ClientCodecError::BadTag(REQ_UNSUBSCRIBE)),
        Request::InvalAck { .. } => Err(ClientCodecError::BadTag(REQ_INVAL_ACK)),
    }
}

/// Everything a client-port connection can ask of a replica daemon: a data
/// operation, a whole multi-key transaction, an operator stats query, or
/// the administrative shutdown of the whole daemon.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// A key-value operation (the common case).
    Op {
        /// Session-local sequence number echoed by the response.
        seq: u64,
        /// Target key.
        key: Key,
        /// The operation.
        cop: ClientOp,
    },
    /// A multi-key transaction, coordinated by the daemon's connection
    /// thread (the lane workers host no transaction state) and answered
    /// with one [`TxnReply`] frame ([`encode_txn_reply_bytes`]).
    Txn {
        /// Session-local sequence number echoed by the reply.
        seq: u64,
        /// The transaction.
        op: TxnOp,
    },
    /// Ask for the daemon's membership/runtime gauges, answered with one
    /// [`StatsPayload`] frame ([`encode_stats_reply_bytes`]) — the RPC
    /// that lets harnesses observe view changes without parsing logs.
    Stats {
        /// Session-local sequence number echoed by the reply.
        seq: u64,
    },
    /// Ask for the daemon's full metrics registry as Prometheus text
    /// exposition, answered with one [`encode_metrics_reply_bytes`] frame:
    /// per-lane latency histograms, protocol-phase counters, plane/cache
    /// gauges. The machine-parseable superset of [`Request::Stats`].
    Metrics {
        /// Session-local sequence number echoed by the reply.
        seq: u64,
    },
    /// Drain the daemon's captured trace spans (slow ops and sampled
    /// cross-node traces), answered with one
    /// [`encode_traces_reply_bytes`] frame. Each scrape consumes what it
    /// returns, so a polling aggregator sees every span exactly once.
    Traces {
        /// Session-local sequence number echoed by the reply.
        seq: u64,
    },
    /// Ask the daemon to exit cleanly (the shutdown RPC; acknowledged with
    /// a [`Reply::WriteOk`] echoing `seq` before the daemon winds down).
    Shutdown {
        /// Session-local sequence number echoed by the acknowledgement.
        seq: u64,
    },
    /// Join the invalidation stream for one key: the replica starts
    /// pushing [`ServerFrame::Invalidate`] frames whenever the key's
    /// protocol timestamp changes, acknowledged with one
    /// [`ServerFrame::Subscribed`] carrying the current view epoch.
    Subscribe {
        /// Session-local sequence number echoed by the acknowledgement.
        seq: u64,
        /// Key to subscribe to.
        key: Key,
    },
    /// Leave the invalidation stream for one key, acknowledged with one
    /// [`ServerFrame::Unsubscribed`].
    Unsubscribe {
        /// Session-local sequence number echoed by the acknowledgement.
        seq: u64,
        /// Key to unsubscribe from.
        key: Key,
    },
    /// Confirm one received [`ServerFrame::Invalidate`] for `key`. Not
    /// replied to: the ack releases the replica-side effect hold that
    /// keeps the superseding write invisible until every subscribed cache
    /// has dropped its entry (the client-side leg of Hermes' invalidation
    /// round).
    InvalAck {
        /// Key whose invalidation push is being confirmed.
        key: Key,
    },
}

/// Everything a replica daemon can send down a client connection: an
/// ordinary sequenced [`Reply`], or one of the server-initiated push
/// frames of the invalidation stream. Decoded by [`decode_server_frame`];
/// the strict [`decode_reply`] keeps rejecting push tags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerFrame {
    /// A sequenced reply to a client request.
    Reply(u64, Reply),
    /// Push: the key changed — drop any cached entry and confirm with
    /// [`Request::InvalAck`]. `epoch` newer than the last seen epoch means
    /// a view changed under the cache: drop **everything**.
    Invalidate {
        /// Invalidated key.
        key: Key,
        /// View epoch the push was issued under.
        epoch: u64,
    },
    /// Acknowledges a [`Request::Subscribe`]: pushes for `key` flow from
    /// now on, and `epoch` anchors the subscriber's view knowledge.
    Subscribed {
        /// Sequence number of the subscribe request.
        seq: u64,
        /// Subscribed key.
        key: Key,
        /// Current view epoch at the replica.
        epoch: u64,
    },
    /// Acknowledges a [`Request::Unsubscribe`].
    Unsubscribed {
        /// Sequence number of the unsubscribe request.
        seq: u64,
        /// Unsubscribed key.
        key: Key,
    },
    /// Push: drop every cached entry (view change or serving loss at the
    /// replica). Requires no ack — it never gates replica-side effects.
    Flush {
        /// View epoch at the replica when the flush was issued.
        epoch: u64,
    },
}

/// One replica daemon's operator-facing gauges, as served by the stats RPC
/// ([`Request::Stats`]): the live membership view plus per-lane operation
/// counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StatsPayload {
    /// Epoch of the currently installed membership view.
    pub epoch: u64,
    /// Reconfigured views installed since the daemon started.
    pub view_changes: u64,
    /// Members of the current view.
    pub members: NodeSet,
    /// Shadows of the current view.
    pub shadows: NodeSet,
    /// Whether the replica currently serves client operations.
    pub serving: bool,
    /// Whether shadow bulk catch-up completed (true unless joining).
    pub synced: bool,
    /// Client operations handled per worker lane since start.
    pub lane_ops: Vec<u64>,
    /// Remote client sessions currently open on the daemon's poller plane.
    pub open_sessions: u64,
    /// Open sessions per poller shard (length = poller pool size) — the
    /// gauge that shows the accept path spreading connections.
    pub sessions_per_shard: Vec<u64>,
    /// Replica-to-replica messages delivered directly into each worker
    /// lane's queue by the transport readers (per-lane ingress demux).
    pub lane_ingress: Vec<u64>,
    /// Live client cache subscriptions across all worker lanes.
    pub subscriptions: u64,
    /// Invalidation/flush pushes sent to subscribed sessions since start.
    pub pushes: u64,
    /// Times the accept path paused because open fds neared `ulimit -n`.
    pub accept_stalls: u64,
}

/// Encodes a shutdown request into a fresh buffer.
pub fn encode_shutdown_bytes(seq: u64) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(seq);
    out.put_u64_le(0); // Key slot, unused: keeps one request layout.
    out.put_u8(REQ_SHUTDOWN);
    out.freeze()
}

/// Encodes one whole multi-key transaction request into a fresh buffer.
pub fn encode_txn_bytes(seq: u64, op: &TxnOp) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(seq);
    out.put_u64_le(0); // Key slot, unused: keeps one request layout.
    out.put_u8(REQ_TXN);
    match op {
        TxnOp::MultiGet(keys) => {
            out.put_u8(TXN_MULTI_GET);
            out.put_u32_le(keys.len() as u32);
            for k in keys {
                out.put_u64_le(k.0);
            }
        }
        TxnOp::MultiPut(puts) => {
            out.put_u8(TXN_MULTI_PUT);
            out.put_u32_le(puts.len() as u32);
            for (k, v) in puts {
                out.put_u64_le(k.0);
                put_value(&mut out, v);
            }
        }
        TxnOp::Transfer {
            debit,
            credit,
            amount,
        } => {
            out.put_u8(TXN_TRANSFER);
            out.put_u64_le(debit.0);
            out.put_u64_le(credit.0);
            out.put_u64_le(*amount);
        }
    }
    out.freeze()
}

/// Encodes a stats query into a fresh buffer.
pub fn encode_stats_request_bytes(seq: u64) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(seq);
    out.put_u64_le(0); // Key slot, unused: keeps one request layout.
    out.put_u8(REQ_STATS);
    out.freeze()
}

/// Encodes a metrics query into a fresh buffer.
pub fn encode_metrics_request_bytes(seq: u64) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(seq);
    out.put_u64_le(0); // Key slot, unused: keeps one request layout.
    out.put_u8(REQ_METRICS);
    out.freeze()
}

/// Encodes one metrics reply (UTF-8 exposition text) into a fresh buffer.
pub fn encode_metrics_reply_bytes(seq: u64, text: &str) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(seq);
    out.put_u8(RSP_METRICS);
    out.put_u32_le(text.len() as u32);
    out.put_slice(text.as_bytes());
    out.freeze()
}

/// Decodes one metrics reply back into exposition text.
///
/// # Errors
///
/// Returns a [`ClientCodecError`] on truncation, a wrong tag, or
/// non-UTF-8 text.
pub fn decode_metrics_reply(buf: &[u8]) -> Result<(u64, String), ClientCodecError> {
    let mut c = Cursor::new(buf);
    let seq = c.u64()?;
    let tag = c.u8()?;
    if tag != RSP_METRICS {
        return Err(ClientCodecError::BadTag(tag));
    }
    let len = c.u32()? as usize;
    let text = String::from_utf8(c.take(len)?.to_vec())
        .map_err(|_| ClientCodecError::BadTag(RSP_METRICS))?;
    Ok((seq, text))
}

/// Encodes a trace-drain query into a fresh buffer.
pub fn encode_traces_request_bytes(seq: u64) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(seq);
    out.put_u64_le(0); // Key slot, unused: keeps one request layout.
    out.put_u8(REQ_TRACES);
    out.freeze()
}

fn put_str(out: &mut BytesMut, s: &str) {
    out.put_u32_le(s.len() as u32);
    out.put_slice(s.as_bytes());
}

fn take_str(c: &mut Cursor<'_>) -> Result<String, ClientCodecError> {
    let len = c.u32()? as usize;
    String::from_utf8(c.take(len)?.to_vec()).map_err(|_| ClientCodecError::BadTag(RSP_TRACES))
}

/// Encodes one traces reply — the structured span records drained from
/// the daemon's trace rings — into a fresh buffer.
pub fn encode_traces_reply_bytes(seq: u64, spans: &[TraceSpan]) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(seq);
    out.put_u8(RSP_TRACES);
    out.put_u32_le(spans.len() as u32);
    for s in spans {
        out.put_u64_le(s.trace);
        out.put_u32_le(s.node);
        out.put_u32_le(s.lane);
        out.put_u64_le(s.start_unix_us);
        out.put_u64_le(s.total_us);
        put_str(&mut out, &s.label);
        out.put_u32_le(s.phases.len() as u32);
        for (phase, at) in &s.phases {
            put_str(&mut out, phase);
            out.put_u64_le(*at);
        }
    }
    out.freeze()
}

/// Decodes one traces reply back into span records.
///
/// # Errors
///
/// Returns a [`ClientCodecError`] on truncation, a wrong tag, or
/// non-UTF-8 strings.
pub fn decode_traces_reply(buf: &[u8]) -> Result<(u64, Vec<TraceSpan>), ClientCodecError> {
    let mut c = Cursor::new(buf);
    let seq = c.u64()?;
    let tag = c.u8()?;
    if tag != RSP_TRACES {
        return Err(ClientCodecError::BadTag(tag));
    }
    let n = c.u32()? as usize;
    let mut spans = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let trace = c.u64()?;
        let node = c.u32()?;
        let lane = c.u32()?;
        let start_unix_us = c.u64()?;
        let total_us = c.u64()?;
        let label = take_str(&mut c)?;
        let p = c.u32()? as usize;
        let mut phases = Vec::with_capacity(p.min(1024));
        for _ in 0..p {
            let phase = take_str(&mut c)?;
            let at = c.u64()?;
            phases.push((phase, at));
        }
        spans.push(TraceSpan {
            trace,
            node,
            lane,
            start_unix_us,
            total_us,
            label,
            phases,
        });
    }
    Ok((seq, spans))
}

/// Encodes a subscribe request into a fresh buffer.
pub fn encode_subscribe_bytes(seq: u64, key: Key) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(seq);
    out.put_u64_le(key.0);
    out.put_u8(REQ_SUBSCRIBE);
    out.freeze()
}

/// Encodes an unsubscribe request into a fresh buffer.
pub fn encode_unsubscribe_bytes(seq: u64, key: Key) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(seq);
    out.put_u64_le(key.0);
    out.put_u8(REQ_UNSUBSCRIBE);
    out.freeze()
}

/// Encodes an invalidation ack into a fresh buffer (seq slot zero: acks
/// are fire-and-forget and never answered).
pub fn encode_inval_ack_bytes(key: Key) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(0);
    out.put_u64_le(key.0);
    out.put_u8(REQ_INVAL_ACK);
    out.freeze()
}

fn decode_txn_op(c: &mut Cursor<'_>) -> Result<TxnOp, ClientCodecError> {
    let sub = c.u8()?;
    Ok(match sub {
        TXN_MULTI_GET => {
            let n = c.u32()? as usize;
            let mut keys = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                keys.push(Key(c.u64()?));
            }
            TxnOp::MultiGet(keys)
        }
        TXN_MULTI_PUT => {
            let n = c.u32()? as usize;
            let mut puts = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let k = Key(c.u64()?);
                let v = c.value()?;
                puts.push((k, v));
            }
            TxnOp::MultiPut(puts)
        }
        TXN_TRANSFER => TxnOp::Transfer {
            debit: Key(c.u64()?),
            credit: Key(c.u64()?),
            amount: c.u64()?,
        },
        other => return Err(ClientCodecError::BadTag(other)),
    })
}

/// Decodes one client request, admin requests included.
///
/// # Errors
///
/// Returns a [`ClientCodecError`] on truncation or an unknown tag.
pub fn decode_any(buf: &[u8]) -> Result<Request, ClientCodecError> {
    let mut c = Cursor::new(buf);
    let seq = c.u64()?;
    let key = Key(c.u64()?);
    let tag = c.u8()?;
    let cop = match tag {
        REQ_READ => ClientOp::Read,
        REQ_WRITE => ClientOp::Write(c.value()?),
        REQ_CAS => ClientOp::Rmw(RmwOp::CompareAndSwap {
            expect: c.value()?,
            new: c.value()?,
        }),
        REQ_FETCH_ADD => ClientOp::Rmw(RmwOp::FetchAdd { delta: c.u64()? }),
        REQ_TXN => {
            let op = decode_txn_op(&mut c)?;
            return Ok(Request::Txn { seq, op });
        }
        REQ_STATS => return Ok(Request::Stats { seq }),
        REQ_METRICS => return Ok(Request::Metrics { seq }),
        REQ_TRACES => return Ok(Request::Traces { seq }),
        REQ_SHUTDOWN => return Ok(Request::Shutdown { seq }),
        REQ_SUBSCRIBE => return Ok(Request::Subscribe { seq, key }),
        REQ_UNSUBSCRIBE => return Ok(Request::Unsubscribe { seq, key }),
        REQ_INVAL_ACK => return Ok(Request::InvalAck { key }),
        other => return Err(ClientCodecError::BadTag(other)),
    };
    Ok(Request::Op { seq, key, cop })
}

/// Encodes one transaction reply into a fresh buffer.
pub fn encode_txn_reply_bytes(seq: u64, reply: &TxnReply) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(seq);
    out.put_u8(RSP_TXN);
    match reply {
        TxnReply::Committed { values } => {
            out.put_u8(TXN_COMMITTED);
            out.put_u32_le(values.len() as u32);
            for (k, v) in values {
                out.put_u64_le(k.0);
                put_value(&mut out, v);
            }
        }
        TxnReply::Aborted(abort) => out.put_u8(match abort {
            TxnAbort::Conflict => TXN_ABORT_CONFLICT,
            TxnAbort::InsufficientFunds => TXN_ABORT_FUNDS,
            TxnAbort::Invalid => TXN_ABORT_INVALID,
            TxnAbort::NotOperational => TXN_ABORT_NOT_OPERATIONAL,
            TxnAbort::Overflow => TXN_ABORT_OVERFLOW,
        }),
    }
    out.freeze()
}

/// Decodes one transaction reply.
///
/// # Errors
///
/// Returns a [`ClientCodecError`] on truncation or an unknown tag.
pub fn decode_txn_reply(buf: &[u8]) -> Result<(u64, TxnReply), ClientCodecError> {
    let mut c = Cursor::new(buf);
    let seq = c.u64()?;
    if c.u8()? != RSP_TXN {
        return Err(ClientCodecError::BadTag(buf[8]));
    }
    let reply = match c.u8()? {
        TXN_COMMITTED => {
            let n = c.u32()? as usize;
            let mut values = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let k = Key(c.u64()?);
                let v = c.value()?;
                values.push((k, v));
            }
            TxnReply::Committed { values }
        }
        TXN_ABORT_CONFLICT => TxnReply::Aborted(TxnAbort::Conflict),
        TXN_ABORT_FUNDS => TxnReply::Aborted(TxnAbort::InsufficientFunds),
        TXN_ABORT_INVALID => TxnReply::Aborted(TxnAbort::Invalid),
        TXN_ABORT_NOT_OPERATIONAL => TxnReply::Aborted(TxnAbort::NotOperational),
        TXN_ABORT_OVERFLOW => TxnReply::Aborted(TxnAbort::Overflow),
        other => return Err(ClientCodecError::BadTag(other)),
    };
    Ok((seq, reply))
}

/// Encodes one stats reply into a fresh buffer.
pub fn encode_stats_reply_bytes(seq: u64, stats: &StatsPayload) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(seq);
    out.put_u8(RSP_STATS);
    out.put_u64_le(stats.epoch);
    out.put_u64_le(stats.view_changes);
    out.put_u64_le(stats.members.bits());
    out.put_u64_le(stats.shadows.bits());
    out.put_u8(stats.serving as u8);
    out.put_u8(stats.synced as u8);
    out.put_u32_le(stats.lane_ops.len() as u32);
    for ops in &stats.lane_ops {
        out.put_u64_le(*ops);
    }
    out.put_u64_le(stats.open_sessions);
    out.put_u32_le(stats.sessions_per_shard.len() as u32);
    for n in &stats.sessions_per_shard {
        out.put_u64_le(*n);
    }
    out.put_u32_le(stats.lane_ingress.len() as u32);
    for n in &stats.lane_ingress {
        out.put_u64_le(*n);
    }
    out.put_u64_le(stats.subscriptions);
    out.put_u64_le(stats.pushes);
    out.put_u64_le(stats.accept_stalls);
    out.freeze()
}

/// Decodes one stats reply.
///
/// Forward-compatible: a daemon newer than this client may append fields
/// after `accept_stalls`; any trailing bytes are skipped, so old clients
/// keep reading new daemons. (The reverse direction — a new client
/// reading an old daemon — requires any future field to be decoded
/// optionally with a default, which is why new fields must only ever be
/// *appended* here.)
///
/// # Errors
///
/// Returns a [`ClientCodecError`] on truncation or an unknown tag.
pub fn decode_stats_reply(buf: &[u8]) -> Result<(u64, StatsPayload), ClientCodecError> {
    let mut c = Cursor::new(buf);
    let seq = c.u64()?;
    if c.u8()? != RSP_STATS {
        return Err(ClientCodecError::BadTag(buf[8]));
    }
    let epoch = c.u64()?;
    let view_changes = c.u64()?;
    let members = NodeSet::from_bits(c.u64()?);
    let shadows = NodeSet::from_bits(c.u64()?);
    let serving = c.u8()? != 0;
    let synced = c.u8()? != 0;
    let n = c.u32()? as usize;
    let mut lane_ops = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        lane_ops.push(c.u64()?);
    }
    let open_sessions = c.u64()?;
    let n = c.u32()? as usize;
    let mut sessions_per_shard = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        sessions_per_shard.push(c.u64()?);
    }
    let n = c.u32()? as usize;
    let mut lane_ingress = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        lane_ingress.push(c.u64()?);
    }
    let subscriptions = c.u64()?;
    let pushes = c.u64()?;
    let accept_stalls = c.u64()?;
    Ok((
        seq,
        StatsPayload {
            epoch,
            view_changes,
            members,
            shadows,
            serving,
            synced,
            lane_ops,
            open_sessions,
            sessions_per_shard,
            lane_ingress,
            subscriptions,
            pushes,
            accept_stalls,
        },
    ))
}

/// Encodes one client response (appending to `out`).
pub fn encode_reply(out: &mut BytesMut, seq: u64, reply: &Reply) {
    out.put_u64_le(seq);
    match reply {
        Reply::ReadOk(v) => {
            out.put_u8(RSP_READ_OK);
            put_value(out, v);
        }
        Reply::WriteOk => out.put_u8(RSP_WRITE_OK),
        Reply::RmwOk { prior } => {
            out.put_u8(RSP_RMW_OK);
            put_value(out, prior);
        }
        Reply::CasFailed { current } => {
            out.put_u8(RSP_CAS_FAILED);
            put_value(out, current);
        }
        Reply::RmwAborted => out.put_u8(RSP_RMW_ABORTED),
        Reply::NotOperational => out.put_u8(RSP_NOT_OPERATIONAL),
        Reply::Unsupported => out.put_u8(RSP_UNSUPPORTED),
    }
}

/// Encodes one client response into a fresh buffer.
pub fn encode_reply_bytes(seq: u64, reply: &Reply) -> Bytes {
    let mut out = BytesMut::new();
    encode_reply(&mut out, seq, reply);
    out.freeze()
}

/// Decodes one client response.
///
/// # Errors
///
/// Returns a [`ClientCodecError`] on truncation or an unknown tag.
pub fn decode_reply(buf: &[u8]) -> Result<(u64, Reply), ClientCodecError> {
    let mut c = Cursor::new(buf);
    let seq = c.u64()?;
    let tag = c.u8()?;
    let reply = match tag {
        RSP_READ_OK => Reply::ReadOk(c.value()?),
        RSP_WRITE_OK => Reply::WriteOk,
        RSP_RMW_OK => Reply::RmwOk { prior: c.value()? },
        RSP_CAS_FAILED => Reply::CasFailed {
            current: c.value()?,
        },
        RSP_RMW_ABORTED => Reply::RmwAborted,
        RSP_NOT_OPERATIONAL => Reply::NotOperational,
        RSP_UNSUPPORTED => Reply::Unsupported,
        other => return Err(ClientCodecError::BadTag(other)),
    };
    Ok((seq, reply))
}

/// Encodes one invalidation push into a fresh buffer.
pub fn encode_invalidate_bytes(key: Key, epoch: u64) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(0); // Seq slot, unused: pushes are not replies.
    out.put_u8(RSP_INVALIDATE);
    out.put_u64_le(key.0);
    out.put_u64_le(epoch);
    out.freeze()
}

/// Encodes one subscription acknowledgement into a fresh buffer.
pub fn encode_subscribed_bytes(seq: u64, key: Key, epoch: u64) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(seq);
    out.put_u8(RSP_SUBSCRIBED);
    out.put_u64_le(key.0);
    out.put_u64_le(epoch);
    out.freeze()
}

/// Encodes one unsubscription acknowledgement into a fresh buffer.
pub fn encode_unsubscribed_bytes(seq: u64, key: Key) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(seq);
    out.put_u8(RSP_UNSUBSCRIBED);
    out.put_u64_le(key.0);
    out.freeze()
}

/// Encodes one flush-everything push into a fresh buffer.
pub fn encode_flush_bytes(epoch: u64) -> Bytes {
    let mut out = BytesMut::new();
    out.put_u64_le(0); // Seq slot, unused: pushes are not replies.
    out.put_u8(RSP_FLUSH);
    out.put_u64_le(epoch);
    out.freeze()
}

/// Decodes anything the server sends down a session stream: sequenced
/// replies **or** push frames. Subscribing clients must use this instead
/// of [`decode_reply`].
///
/// # Errors
///
/// Returns a [`ClientCodecError`] on truncation or an unknown tag.
pub fn decode_server_frame(buf: &[u8]) -> Result<ServerFrame, ClientCodecError> {
    let mut c = Cursor::new(buf);
    let seq = c.u64()?;
    let tag = c.u8()?;
    Ok(match tag {
        RSP_INVALIDATE => ServerFrame::Invalidate {
            key: Key(c.u64()?),
            epoch: c.u64()?,
        },
        RSP_SUBSCRIBED => ServerFrame::Subscribed {
            seq,
            key: Key(c.u64()?),
            epoch: c.u64()?,
        },
        RSP_UNSUBSCRIBED => ServerFrame::Unsubscribed {
            seq,
            key: Key(c.u64()?),
        },
        RSP_FLUSH => ServerFrame::Flush { epoch: c.u64()? },
        _ => {
            let (seq, reply) = decode_reply(buf)?;
            ServerFrame::Reply(seq, reply)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_samples() -> Vec<(u64, Key, ClientOp)> {
        vec![
            (0, Key(1), ClientOp::Read),
            (7, Key(u64::MAX), ClientOp::Write(Value::filled(0xCD, 32))),
            (8, Key(2), ClientOp::Write(Value::EMPTY)),
            (
                9,
                Key(3),
                ClientOp::Rmw(RmwOp::CompareAndSwap {
                    expect: Value::EMPTY,
                    new: Value::from_u64(5),
                }),
            ),
            (
                u64::MAX,
                Key(4),
                ClientOp::Rmw(RmwOp::FetchAdd { delta: 123 }),
            ),
        ]
    }

    fn reply_samples() -> Vec<(u64, Reply)> {
        vec![
            (0, Reply::ReadOk(Value::from_u64(9))),
            (1, Reply::ReadOk(Value::EMPTY)),
            (2, Reply::WriteOk),
            (
                3,
                Reply::RmwOk {
                    prior: Value::filled(1, 64),
                },
            ),
            (
                4,
                Reply::CasFailed {
                    current: Value::from_u64(1),
                },
            ),
            (5, Reply::RmwAborted),
            (6, Reply::NotOperational),
            (7, Reply::Unsupported),
        ]
    }

    #[test]
    fn requests_roundtrip() {
        for (seq, key, cop) in request_samples() {
            let encoded = encode_request_bytes(seq, key, &cop);
            assert_eq!(decode_request(&encoded).unwrap(), (seq, key, cop));
        }
    }

    #[test]
    fn replies_roundtrip() {
        for (seq, reply) in reply_samples() {
            let encoded = encode_reply_bytes(seq, &reply);
            assert_eq!(decode_reply(&encoded).unwrap(), (seq, reply));
        }
    }

    #[test]
    fn truncation_errors_everywhere() {
        for (seq, key, cop) in request_samples() {
            let full = encode_request_bytes(seq, key, &cop);
            for cut in 0..full.len() {
                assert_eq!(
                    decode_request(&full[..cut]),
                    Err(ClientCodecError::Truncated),
                    "request cut at {cut}"
                );
            }
        }
        for (seq, reply) in reply_samples() {
            let full = encode_reply_bytes(seq, &reply);
            for cut in 0..full.len() {
                assert_eq!(
                    decode_reply(&full[..cut]),
                    Err(ClientCodecError::Truncated),
                    "reply cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn bad_tags_error() {
        let mut req = encode_request_bytes(1, Key(1), &ClientOp::Read).to_vec();
        req[16] = 99;
        assert_eq!(decode_request(&req), Err(ClientCodecError::BadTag(99)));
        let mut rsp = encode_reply_bytes(1, &Reply::WriteOk).to_vec();
        rsp[8] = 77;
        assert_eq!(decode_reply(&rsp), Err(ClientCodecError::BadTag(77)));
    }

    #[test]
    fn shutdown_request_roundtrips_and_is_rejected_by_the_op_decoder() {
        let frame = encode_shutdown_bytes(17);
        assert_eq!(decode_any(&frame).unwrap(), Request::Shutdown { seq: 17 });
        // The op-only decoder refuses it (callers not expecting admin
        // requests treat it as a protocol error).
        assert_eq!(
            decode_request(&frame),
            Err(ClientCodecError::BadTag(REQ_SHUTDOWN))
        );
        // Data requests decode identically through both entry points.
        let op = encode_request_bytes(5, Key(9), &ClientOp::Read);
        assert_eq!(
            decode_any(&op).unwrap(),
            Request::Op {
                seq: 5,
                key: Key(9),
                cop: ClientOp::Read
            }
        );
    }

    fn txn_op_samples() -> Vec<TxnOp> {
        vec![
            TxnOp::MultiGet(vec![Key(1), Key(u64::MAX), Key(0)]),
            TxnOp::MultiGet(vec![]),
            TxnOp::MultiPut(vec![
                (Key(3), Value::from_u64(7)),
                (Key(4), Value::EMPTY),
                (Key(5), Value::filled(0xEE, 64)),
            ]),
            TxnOp::Transfer {
                debit: Key(10),
                credit: Key(11),
                amount: u64::MAX,
            },
        ]
    }

    fn txn_reply_samples() -> Vec<TxnReply> {
        vec![
            TxnReply::Committed { values: vec![] },
            TxnReply::Committed {
                values: vec![(Key(1), Value::from_u64(9)), (Key(2), Value::EMPTY)],
            },
            TxnReply::Aborted(TxnAbort::Conflict),
            TxnReply::Aborted(TxnAbort::InsufficientFunds),
            TxnReply::Aborted(TxnAbort::Invalid),
            TxnReply::Aborted(TxnAbort::NotOperational),
            TxnReply::Aborted(TxnAbort::Overflow),
        ]
    }

    #[test]
    fn txn_requests_roundtrip_and_truncate_cleanly() {
        for (seq, op) in txn_op_samples().into_iter().enumerate() {
            let frame = encode_txn_bytes(seq as u64, &op);
            assert_eq!(
                decode_any(&frame).unwrap(),
                Request::Txn {
                    seq: seq as u64,
                    op: op.clone()
                }
            );
            // The single-key decoder refuses whole transactions.
            assert_eq!(
                decode_request(&frame),
                Err(ClientCodecError::BadTag(REQ_TXN))
            );
            for cut in 0..frame.len() {
                assert_eq!(
                    decode_any(&frame[..cut]),
                    Err(ClientCodecError::Truncated),
                    "txn request {op:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn txn_replies_roundtrip_and_truncate_cleanly() {
        for (seq, reply) in txn_reply_samples().into_iter().enumerate() {
            let frame = encode_txn_reply_bytes(seq as u64, &reply);
            assert_eq!(
                decode_txn_reply(&frame).unwrap(),
                (seq as u64, reply.clone())
            );
            // A txn reply is not a single-key reply and vice versa.
            assert!(decode_reply(&frame).is_err());
            for cut in 0..frame.len() {
                assert_eq!(
                    decode_txn_reply(&frame[..cut]),
                    Err(ClientCodecError::Truncated),
                    "txn reply {reply:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn stats_rpc_roundtrips() {
        let frame = encode_stats_request_bytes(3);
        assert_eq!(decode_any(&frame).unwrap(), Request::Stats { seq: 3 });
        assert_eq!(
            decode_request(&frame),
            Err(ClientCodecError::BadTag(REQ_STATS))
        );
        let stats = StatsPayload {
            epoch: 2,
            view_changes: 1,
            members: NodeSet::first_n(2),
            shadows: NodeSet::from_bits(0b100),
            serving: true,
            synced: false,
            lane_ops: vec![10, 0, 7],
            open_sessions: 1234,
            sessions_per_shard: vec![617, 617],
            lane_ingress: vec![42, 0, 99],
            subscriptions: 12,
            pushes: 345,
            accept_stalls: 6,
        };
        let frame = encode_stats_reply_bytes(9, &stats);
        assert_eq!(decode_stats_reply(&frame).unwrap(), (9, stats.clone()));
        assert!(decode_reply(&frame).is_err());
        for cut in 0..frame.len() {
            assert_eq!(
                decode_stats_reply(&frame[..cut]),
                Err(ClientCodecError::Truncated),
                "stats reply cut at {cut}"
            );
        }
    }

    #[test]
    fn stats_reply_skips_unknown_trailing_fields() {
        // A newer daemon appends fields this client doesn't know. The
        // decoder must read what it understands and skip the rest — old
        // clients keep working against new daemons.
        let stats = StatsPayload {
            epoch: 5,
            view_changes: 2,
            members: NodeSet::first_n(3),
            shadows: NodeSet::from_bits(0),
            serving: true,
            synced: true,
            lane_ops: vec![1, 2],
            open_sessions: 3,
            sessions_per_shard: vec![3],
            lane_ingress: vec![4],
            subscriptions: 5,
            pushes: 6,
            accept_stalls: 7,
        };
        let mut extended = encode_stats_reply_bytes(1, &stats).to_vec();
        // Hypothetical future fields: a u64 and a length-prefixed vec.
        extended.extend_from_slice(&99u64.to_le_bytes());
        extended.extend_from_slice(&2u32.to_le_bytes());
        extended.extend_from_slice(&11u64.to_le_bytes());
        extended.extend_from_slice(&22u64.to_le_bytes());
        assert_eq!(decode_stats_reply(&extended).unwrap(), (1, stats.clone()));
        // And the exact frame still round-trips byte-identically: what a
        // new client encodes, an old daemon's payload shape decodes.
        let exact = encode_stats_reply_bytes(1, &stats);
        let (seq, decoded) = decode_stats_reply(&exact).unwrap();
        assert_eq!((seq, &decoded), (1, &stats));
        assert_eq!(encode_stats_reply_bytes(seq, &decoded), exact);
    }

    #[test]
    fn metrics_rpc_roundtrips_and_truncates_cleanly() {
        let frame = encode_metrics_request_bytes(8);
        assert_eq!(decode_any(&frame).unwrap(), Request::Metrics { seq: 8 });
        assert_eq!(
            decode_request(&frame),
            Err(ClientCodecError::BadTag(REQ_METRICS))
        );
        for cut in 0..frame.len() {
            assert_eq!(
                decode_any(&frame[..cut]),
                Err(ClientCodecError::Truncated),
                "metrics request cut at {cut}"
            );
        }

        let text = "# HELP op_us Op latency.\n# TYPE op_us summary\n\
                    op_us{lane=\"0\",quantile=\"0.99\"} 42\nop_us_count{lane=\"0\"} 7\n";
        let reply = encode_metrics_reply_bytes(8, text);
        assert_eq!(decode_metrics_reply(&reply).unwrap(), (8, text.to_string()));
        // Neither the strict reply decoder nor the stats decoder accept it.
        assert!(decode_reply(&reply).is_err());
        assert!(decode_stats_reply(&reply).is_err());
        for cut in 0..reply.len() {
            assert_eq!(
                decode_metrics_reply(&reply[..cut]),
                Err(ClientCodecError::Truncated),
                "metrics reply cut at {cut}"
            );
        }
        // Empty exposition is legal (a daemon with recording off).
        let empty = encode_metrics_reply_bytes(9, "");
        assert_eq!(decode_metrics_reply(&empty).unwrap(), (9, String::new()));
    }

    #[test]
    fn traces_rpc_roundtrips_and_truncates_cleanly() {
        let frame = encode_traces_request_bytes(12);
        assert_eq!(decode_any(&frame).unwrap(), Request::Traces { seq: 12 });
        assert_eq!(
            decode_request(&frame),
            Err(ClientCodecError::BadTag(REQ_TRACES))
        );
        for cut in 0..frame.len() {
            assert_eq!(
                decode_any(&frame[..cut]),
                Err(ClientCodecError::Truncated),
                "traces request cut at {cut}"
            );
        }

        let spans = vec![
            TraceSpan {
                trace: 0xfeed_f00d,
                node: 1,
                lane: 0,
                start_unix_us: 1_700_000_000_000_000,
                total_us: 430,
                label: "n1/lane0 op client=4294967296 seq=9".into(),
                phases: vec![
                    ("issued".into(), 0),
                    ("inval_broadcast".into(), 20),
                    ("reply_released".into(), 430),
                ],
            },
            TraceSpan {
                trace: 0,
                node: 2,
                lane: u32::MAX,
                start_unix_us: 0,
                total_us: 120_000,
                label: "n2/pump view_change epoch=3".into(),
                phases: vec![("view_change_start".into(), 0)],
            },
        ];
        let reply = encode_traces_reply_bytes(12, &spans);
        assert_eq!(decode_traces_reply(&reply).unwrap(), (12, spans.clone()));
        // No other decoder accepts a traces reply.
        assert!(decode_reply(&reply).is_err());
        assert!(decode_stats_reply(&reply).is_err());
        assert!(decode_metrics_reply(&reply).is_err());
        for cut in 0..reply.len() {
            assert_eq!(
                decode_traces_reply(&reply[..cut]),
                Err(ClientCodecError::Truncated),
                "traces reply cut at {cut}"
            );
        }
        // An empty drain is the common steady-state answer.
        let empty = encode_traces_reply_bytes(13, &[]);
        assert_eq!(decode_traces_reply(&empty).unwrap(), (13, vec![]));
    }

    #[test]
    fn subscription_requests_roundtrip_and_are_rejected_by_the_op_decoder() {
        let sub = encode_subscribe_bytes(3, Key(42));
        assert_eq!(
            decode_any(&sub).unwrap(),
            Request::Subscribe {
                seq: 3,
                key: Key(42)
            }
        );
        assert_eq!(
            decode_request(&sub),
            Err(ClientCodecError::BadTag(REQ_SUBSCRIBE))
        );
        let unsub = encode_unsubscribe_bytes(4, Key(u64::MAX));
        assert_eq!(
            decode_any(&unsub).unwrap(),
            Request::Unsubscribe {
                seq: 4,
                key: Key(u64::MAX)
            }
        );
        assert_eq!(
            decode_request(&unsub),
            Err(ClientCodecError::BadTag(REQ_UNSUBSCRIBE))
        );
        let ack = encode_inval_ack_bytes(Key(7));
        assert_eq!(decode_any(&ack).unwrap(), Request::InvalAck { key: Key(7) });
        assert_eq!(
            decode_request(&ack),
            Err(ClientCodecError::BadTag(REQ_INVAL_ACK))
        );
        for frame in [sub, unsub, ack] {
            for cut in 0..frame.len() {
                assert_eq!(
                    decode_any(&frame[..cut]),
                    Err(ClientCodecError::Truncated),
                    "subscription request cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn push_frames_roundtrip_only_through_the_superset_decoder() {
        let samples = vec![
            (
                encode_invalidate_bytes(Key(5), 2),
                ServerFrame::Invalidate {
                    key: Key(5),
                    epoch: 2,
                },
            ),
            (
                encode_subscribed_bytes(9, Key(u64::MAX), 1),
                ServerFrame::Subscribed {
                    seq: 9,
                    key: Key(u64::MAX),
                    epoch: 1,
                },
            ),
            (
                encode_unsubscribed_bytes(10, Key(0)),
                ServerFrame::Unsubscribed {
                    seq: 10,
                    key: Key(0),
                },
            ),
            (encode_flush_bytes(7), ServerFrame::Flush { epoch: 7 }),
        ];
        for (frame, want) in samples {
            assert_eq!(decode_server_frame(&frame).unwrap(), want);
            // The strict reply decoder refuses every push tag: sessions
            // that never subscribed keep their narrow protocol.
            assert!(matches!(
                decode_reply(&frame),
                Err(ClientCodecError::BadTag(_))
            ));
            for cut in 0..frame.len() {
                assert_eq!(
                    decode_server_frame(&frame[..cut]),
                    Err(ClientCodecError::Truncated),
                    "push frame {want:?} cut at {cut}"
                );
            }
        }
        // Ordinary replies pass through the superset decoder unchanged.
        for (seq, reply) in reply_samples() {
            let frame = encode_reply_bytes(seq, &reply);
            assert_eq!(
                decode_server_frame(&frame).unwrap(),
                ServerFrame::Reply(seq, reply)
            );
        }
    }

    #[test]
    fn declared_value_length_is_bounded_by_buffer() {
        let mut req =
            encode_request_bytes(1, Key(1), &ClientOp::Write(Value::from_u64(1))).to_vec();
        // Inflate the declared value length past the buffer end.
        req[17..21].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&req), Err(ClientCodecError::Truncated));
    }
}
