use bytes::{BufMut, Bytes, BytesMut};
use hermes_common::NodeId;
use std::collections::HashMap;

/// Error decoding a batched frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Frame ended before the declared message count was read.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "batched frame truncated"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Counters describing batching effectiveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Messages accepted by [`Batcher::push`].
    pub messages: u64,
    /// Frames emitted.
    pub frames: u64,
    /// Total payload bytes batched (excluding frame headers).
    pub payload_bytes: u64,
}

impl BatchStats {
    /// Average number of messages per emitted frame.
    pub fn avg_batch_size(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.messages as f64 / self.frames as f64
        }
    }
}

/// Opportunistic per-receiver message batching (paper §4.2).
///
/// Messages destined for the same receiver accumulate in a per-peer buffer.
/// A buffer is emitted either when it reaches the size/count limits
/// ([`Batcher::push`] returns the full frame) or when the caller finishes a
/// poll cycle and flushes whatever is ready ([`Batcher::flush_all`]) — the
/// batcher never *waits* to fill a batch, which is what "opportunistic"
/// means in the paper.
///
/// Frame layout: `u16` message count, then per message a `u32` length prefix
/// and the payload.
#[derive(Debug)]
pub struct Batcher {
    max_frame_bytes: usize,
    max_msgs: usize,
    buffers: HashMap<NodeId, (BytesMut, usize)>,
    stats: BatchStats,
}

impl Batcher {
    /// Creates a batcher emitting frames of at most `max_frame_bytes` of
    /// payload or `max_msgs` messages, whichever is hit first.
    ///
    /// # Panics
    ///
    /// Panics if `max_msgs` is 0 or exceeds `u16::MAX`.
    pub fn new(max_frame_bytes: usize, max_msgs: usize) -> Self {
        assert!(max_msgs > 0 && max_msgs <= u16::MAX as usize);
        Batcher {
            max_frame_bytes,
            max_msgs,
            buffers: HashMap::new(),
            stats: BatchStats::default(),
        }
    }

    /// Queues `payload` for `to`; returns a completed frame if the peer's
    /// buffer reached a limit.
    pub fn push(&mut self, to: NodeId, payload: &[u8]) -> Option<(NodeId, Bytes)> {
        self.stats.messages += 1;
        self.stats.payload_bytes += payload.len() as u64;
        let (buf, count) = self
            .buffers
            .entry(to)
            .or_insert_with(|| (BytesMut::new(), 0));
        if *count == 0 {
            buf.put_u16_le(0); // count patched at flush
        }
        buf.put_u32_le(payload.len() as u32);
        buf.put_slice(payload);
        *count += 1;
        if *count >= self.max_msgs || buf.len() >= self.max_frame_bytes {
            self.stats.frames += 1;
            return Some((to, Self::seal(buf, count)));
        }
        None
    }

    fn seal(buf: &mut BytesMut, count: &mut usize) -> Bytes {
        let mut frame = std::mem::take(buf);
        let n = *count as u16;
        // Data frames always carry ≥ 1 message: a zero count is the escape
        // reserved for control frames (see [`crate::control`]).
        debug_assert!(n >= 1, "data frames never seal empty");
        frame[0..2].copy_from_slice(&n.to_le_bytes());
        *count = 0;
        frame.freeze()
    }

    /// Emits every non-empty per-peer buffer (end of a poll cycle).
    pub fn flush_all(&mut self) -> Vec<(NodeId, Bytes)> {
        let mut out: Vec<(NodeId, Bytes)> = Vec::new();
        self.flush_into(|to, frame| out.push((to, frame)));
        // Deterministic emission order.
        out.sort_by_key(|(to, _)| *to);
        out
    }

    /// Emits every non-empty per-peer buffer into `emit` without allocating
    /// an output vector (the worker-loop hot path of the threaded runtime).
    ///
    /// Per-peer FIFO order is preserved; the order *across* peers is
    /// unspecified — use [`Batcher::flush_all`] where determinism matters.
    pub fn flush_into(&mut self, mut emit: impl FnMut(NodeId, Bytes)) {
        for (&to, (buf, count)) in self.buffers.iter_mut() {
            if *count > 0 {
                self.stats.frames += 1;
                emit(to, Self::seal(buf, count));
            }
        }
    }

    /// Batching counters (messages, frames, payload bytes).
    pub fn stats(&self) -> BatchStats {
        self.stats
    }

    /// Number of messages currently buffered (not yet framed).
    pub fn pending(&self) -> usize {
        self.buffers.values().map(|(_, c)| *c).sum()
    }
}

/// Splits a frame produced by [`Batcher`] back into its message payloads.
///
/// # Errors
///
/// Returns [`FrameError::Truncated`] if the frame is malformed.
pub fn decode_frame(frame: &[u8]) -> Result<Vec<Bytes>, FrameError> {
    if frame.len() < 2 {
        return Err(FrameError::Truncated);
    }
    let count = u16::from_le_bytes(frame[..2].try_into().expect("sized")) as usize;
    let mut out = Vec::with_capacity(count);
    let mut at = 2usize;
    for _ in 0..count {
        if frame.len() < at + 4 {
            return Err(FrameError::Truncated);
        }
        let len = u32::from_le_bytes(frame[at..at + 4].try_into().expect("sized")) as usize;
        at += 4;
        if frame.len() < at + len {
            return Err(FrameError::Truncated);
        }
        out.push(Bytes::copy_from_slice(&frame[at..at + len]));
        at += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_message_roundtrip() {
        let mut b = Batcher::new(1500, 16);
        assert!(b.push(NodeId(1), b"hello").is_none());
        let frames = b.flush_all();
        assert_eq!(frames.len(), 1);
        let msgs = decode_frame(&frames[0].1).unwrap();
        assert_eq!(msgs, vec![Bytes::from_static(b"hello")]);
    }

    #[test]
    fn batches_group_by_receiver_and_preserve_order() {
        let mut b = Batcher::new(1500, 16);
        b.push(NodeId(1), b"a1");
        b.push(NodeId(2), b"b1");
        b.push(NodeId(1), b"a2");
        let frames = b.flush_all();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0, NodeId(1));
        let msgs = decode_frame(&frames[0].1).unwrap();
        assert_eq!(
            msgs,
            vec![Bytes::from_static(b"a1"), Bytes::from_static(b"a2")]
        );
        let msgs = decode_frame(&frames[1].1).unwrap();
        assert_eq!(msgs, vec![Bytes::from_static(b"b1")]);
    }

    #[test]
    fn flush_into_emits_same_frames_as_flush_all() {
        let mut b = Batcher::new(1500, 16);
        b.push(NodeId(2), b"to-2");
        b.push(NodeId(0), b"to-0");
        b.push(NodeId(2), b"to-2-again");
        let mut frames = Vec::new();
        b.flush_into(|to, frame| frames.push((to, frame)));
        frames.sort_by_key(|(to, _)| *to);
        assert_eq!(frames.len(), 2);
        assert_eq!(
            decode_frame(&frames[1].1).unwrap(),
            vec![
                Bytes::from_static(b"to-2"),
                Bytes::from_static(b"to-2-again")
            ]
        );
        assert_eq!(b.stats().frames, 2);
        assert_eq!(b.pending(), 0);
        // A second flush emits nothing.
        b.flush_into(|_, _| panic!("no frames expected"));
    }

    #[test]
    fn count_limit_emits_early() {
        let mut b = Batcher::new(usize::MAX, 3);
        assert!(b.push(NodeId(1), b"x").is_none());
        assert!(b.push(NodeId(1), b"y").is_none());
        let (to, frame) = b.push(NodeId(1), b"z").expect("limit reached");
        assert_eq!(to, NodeId(1));
        assert_eq!(decode_frame(&frame).unwrap().len(), 3);
        assert_eq!(b.pending(), 0);
        assert!(b.flush_all().is_empty());
    }

    #[test]
    fn byte_limit_emits_early() {
        let mut b = Batcher::new(64, 1000);
        let payload = vec![7u8; 40];
        assert!(b.push(NodeId(1), &payload).is_none());
        assert!(b.push(NodeId(1), &payload).is_some(), "64B limit crossed");
    }

    #[test]
    fn never_stalls_no_partial_batches_left_behind() {
        // "Opportunistic": a flush cycle always drains everything.
        let mut b = Batcher::new(1500, 16);
        for i in 0..5u32 {
            b.push(NodeId(i % 2), &i.to_le_bytes());
        }
        assert_eq!(b.pending(), 5);
        let frames = b.flush_all();
        let total: usize = frames
            .iter()
            .map(|(_, f)| decode_frame(f).unwrap().len())
            .sum();
        assert_eq!(total, 5);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn conservation_no_loss_or_duplication_through_batching() {
        let mut b = Batcher::new(256, 7);
        let mut sent: Vec<Vec<u8>> = Vec::new();
        let mut received: Vec<Vec<u8>> = Vec::new();
        for i in 0..1000u32 {
            let payload = i.to_le_bytes().to_vec();
            sent.push(payload.clone());
            if let Some((_, frame)) = b.push(NodeId(3), &payload) {
                for m in decode_frame(&frame).unwrap() {
                    received.push(m.to_vec());
                }
            }
        }
        for (_, frame) in b.flush_all() {
            for m in decode_frame(&frame).unwrap() {
                received.push(m.to_vec());
            }
        }
        assert_eq!(sent, received);
    }

    #[test]
    fn empty_payloads_are_preserved() {
        let mut b = Batcher::new(1500, 16);
        b.push(NodeId(0), b"");
        b.push(NodeId(0), b"x");
        let frames = b.flush_all();
        let msgs = decode_frame(&frames[0].1).unwrap();
        assert_eq!(msgs.len(), 2);
        assert!(msgs[0].is_empty());
    }

    #[test]
    fn stats_track_amortization() {
        let mut b = Batcher::new(1500, 100);
        for _ in 0..10 {
            b.push(NodeId(1), b"0123456789");
        }
        b.flush_all();
        let s = b.stats();
        assert_eq!(s.messages, 10);
        assert_eq!(s.frames, 1);
        assert_eq!(s.payload_bytes, 100);
        assert!((s.avg_batch_size() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn malformed_frames_error() {
        assert_eq!(decode_frame(&[]), Err(FrameError::Truncated));
        assert_eq!(decode_frame(&[2, 0]), Err(FrameError::Truncated));
        assert_eq!(
            decode_frame(&[1, 0, 5, 0, 0, 0, 1]),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    #[should_panic]
    fn zero_max_msgs_rejected() {
        Batcher::new(100, 0);
    }
}
