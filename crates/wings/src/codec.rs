//! Wire format for Hermes protocol messages.
//!
//! Mirrors the message layouts of paper Figure 3: every message carries its
//! type, the sender's epoch, the key and the logical timestamp; INVs
//! additionally carry the update kind and the value (early value
//! propagation). All integers are little-endian. The encoded size equals
//! [`hermes_core::Msg::wire_size`], which the simulator's bandwidth model
//! also uses — the unit tests pin the two together.

use bytes::{BufMut, Bytes, BytesMut};
use hermes_common::{Epoch, Key, Value};
use hermes_core::{Msg, Ts, UpdateKind};

const TAG_INV: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_VAL: u8 = 3;

const KIND_WRITE: u8 = 0;
const KIND_RMW: u8 = 1;

/// Errors produced when decoding a malformed message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the fixed header was complete.
    Truncated,
    /// Unknown message tag byte.
    BadTag(u8),
    /// Unknown update-kind byte in an INV.
    BadKind(u8),
    /// The declared value length exceeds the remaining bytes.
    BadValueLength,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::BadKind(k) => write!(f, "unknown update kind {k}"),
            DecodeError::BadValueLength => write!(f, "declared value length out of bounds"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes `msg` into `out` (appending).
pub fn encode_into(msg: &Msg, out: &mut BytesMut) {
    match msg {
        Msg::Inv {
            key,
            ts,
            value,
            kind,
            epoch,
        } => {
            out.put_u8(TAG_INV);
            put_header(out, *epoch, *key, *ts);
            out.put_u8(match kind {
                UpdateKind::Write => KIND_WRITE,
                UpdateKind::Rmw => KIND_RMW,
            });
            out.put_u32_le(value.len() as u32);
            out.put_slice(value.as_bytes());
        }
        Msg::Ack { key, ts, epoch } => {
            out.put_u8(TAG_ACK);
            put_header(out, *epoch, *key, *ts);
        }
        Msg::Val { key, ts, epoch } => {
            out.put_u8(TAG_VAL);
            put_header(out, *epoch, *key, *ts);
        }
    }
}

fn put_header(out: &mut BytesMut, epoch: Epoch, key: Key, ts: Ts) {
    out.put_u64_le(epoch.0);
    out.put_u64_le(key.0);
    out.put_u64_le(ts.version);
    out.put_u32_le(ts.cid);
}

/// Encodes `msg` into a fresh buffer.
pub fn encode(msg: &Msg) -> Bytes {
    let mut out = BytesMut::with_capacity(msg.wire_size());
    encode_into(msg, &mut out);
    debug_assert_eq!(out.len(), msg.wire_size(), "codec must match wire_size");
    out.freeze()
}

/// Decodes one message from `buf`.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the buffer is truncated or contains invalid
/// tag/kind/length fields.
pub fn decode(buf: &[u8]) -> Result<Msg, DecodeError> {
    const HEADER: usize = 1 + 8 + 8 + 8 + 4;
    if buf.len() < HEADER {
        return Err(DecodeError::Truncated);
    }
    let tag = buf[0];
    let epoch = Epoch(u64::from_le_bytes(buf[1..9].try_into().expect("sized")));
    let key = Key(u64::from_le_bytes(buf[9..17].try_into().expect("sized")));
    let ts = Ts::new(
        u64::from_le_bytes(buf[17..25].try_into().expect("sized")),
        u32::from_le_bytes(buf[25..29].try_into().expect("sized")),
    );
    match tag {
        TAG_ACK => Ok(Msg::Ack { key, ts, epoch }),
        TAG_VAL => Ok(Msg::Val { key, ts, epoch }),
        TAG_INV => {
            if buf.len() < HEADER + 5 {
                return Err(DecodeError::Truncated);
            }
            let kind = match buf[HEADER] {
                KIND_WRITE => UpdateKind::Write,
                KIND_RMW => UpdateKind::Rmw,
                other => return Err(DecodeError::BadKind(other)),
            };
            let vlen =
                u32::from_le_bytes(buf[HEADER + 1..HEADER + 5].try_into().expect("sized")) as usize;
            let start = HEADER + 5;
            if buf.len() < start + vlen {
                return Err(DecodeError::BadValueLength);
            }
            let value = Value::from(buf[start..start + vlen].to_vec());
            Ok(Msg::Inv {
                key,
                ts,
                value,
                kind,
                epoch,
            })
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Msg> {
        vec![
            Msg::Inv {
                key: Key(7),
                ts: Ts::new(3, 1),
                value: Value::filled(0xAB, 32),
                kind: UpdateKind::Write,
                epoch: Epoch(2),
            },
            Msg::Inv {
                key: Key(u64::MAX),
                ts: Ts::new(u64::MAX, u32::MAX),
                value: Value::EMPTY,
                kind: UpdateKind::Rmw,
                epoch: Epoch(u64::MAX),
            },
            Msg::Ack {
                key: Key(0),
                ts: Ts::ZERO,
                epoch: Epoch(0),
            },
            Msg::Val {
                key: Key(123),
                ts: Ts::new(9, 4),
                epoch: Epoch(1),
            },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for msg in samples() {
            let encoded = encode(&msg);
            let decoded = decode(&encoded).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn encoded_size_matches_wire_size() {
        for msg in samples() {
            assert_eq!(encode(&msg).len(), msg.wire_size(), "msg: {msg:?}");
        }
        // And scales with value size.
        let big = Msg::Inv {
            key: Key(1),
            ts: Ts::new(1, 1),
            value: Value::filled(1, 1024),
            kind: UpdateKind::Write,
            epoch: Epoch(1),
        };
        assert_eq!(encode(&big).len(), big.wire_size());
    }

    #[test]
    fn truncated_buffers_error() {
        let full = encode(&samples()[0]);
        for cut in [0, 1, 10, 28, 30] {
            assert!(
                decode(&full[..cut.min(full.len())]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn bad_tag_and_kind_error() {
        let mut buf = encode(&samples()[2]).to_vec();
        buf[0] = 99;
        assert_eq!(decode(&buf), Err(DecodeError::BadTag(99)));

        let mut inv = encode(&samples()[0]).to_vec();
        inv[29] = 7; // kind byte
        assert_eq!(decode(&inv), Err(DecodeError::BadKind(7)));
    }

    #[test]
    fn value_length_is_validated() {
        let mut inv = encode(&samples()[0]).to_vec();
        // Declare a value longer than the buffer.
        inv[30..34].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&inv), Err(DecodeError::BadValueLength));
    }
}
