//! Wire format for Hermes protocol messages.
//!
//! Mirrors the message layouts of paper Figure 3: every message carries its
//! type, the sender's epoch, the key and the logical timestamp; INVs
//! additionally carry the update kind and the value (early value
//! propagation). All integers are little-endian. The encoded size equals
//! [`hermes_core::Msg::wire_size`], which the simulator's bandwidth model
//! also uses — the unit tests pin the two together.
//!
//! **Trace context.** A sampled op's 8-byte [`TraceId`] rides inside the
//! data frames: the tag byte's high bit ([`TRACE_FLAG`]) flags its
//! presence and the id follows immediately after the tag, before the
//! fixed header. Unsampled messages (`HERMES_TRACE_SAMPLE=0`, the
//! default) are byte-identical to the untraced format — zero wire cost —
//! and the traced size is pinned to
//! [`hermes_core::Msg::wire_size_traced`] the same way.

use bytes::{BufMut, Bytes, BytesMut};
use hermes_common::{Epoch, Key, Value};
use hermes_core::{Msg, Ts, UpdateKind};
use hermes_obs::TraceId;

const TAG_INV: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_VAL: u8 = 3;

/// High bit of the tag byte: set when an 8-byte trace id follows the tag.
pub const TRACE_FLAG: u8 = 0x80;

const KIND_WRITE: u8 = 0;
const KIND_RMW: u8 = 1;

/// Errors produced when decoding a malformed message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the fixed header was complete.
    Truncated,
    /// Unknown message tag byte.
    BadTag(u8),
    /// Unknown update-kind byte in an INV.
    BadKind(u8),
    /// The declared value length exceeds the remaining bytes.
    BadValueLength,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::BadTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::BadKind(k) => write!(f, "unknown update kind {k}"),
            DecodeError::BadValueLength => write!(f, "declared value length out of bounds"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes `msg` into `out` (appending), without trace context.
pub fn encode_into(msg: &Msg, out: &mut BytesMut) {
    encode_traced_into(msg, TraceId::NONE, out);
}

/// Encodes `msg` into `out` (appending); a sampled `trace` sets
/// [`TRACE_FLAG`] on the tag byte and writes the id right after it.
pub fn encode_traced_into(msg: &Msg, trace: TraceId, out: &mut BytesMut) {
    match msg {
        Msg::Inv {
            key,
            ts,
            value,
            kind,
            epoch,
        } => {
            put_tag(out, TAG_INV, trace);
            put_header(out, *epoch, *key, *ts);
            out.put_u8(match kind {
                UpdateKind::Write => KIND_WRITE,
                UpdateKind::Rmw => KIND_RMW,
            });
            out.put_u32_le(value.len() as u32);
            out.put_slice(value.as_bytes());
        }
        Msg::Ack { key, ts, epoch } => {
            put_tag(out, TAG_ACK, trace);
            put_header(out, *epoch, *key, *ts);
        }
        Msg::Val { key, ts, epoch } => {
            put_tag(out, TAG_VAL, trace);
            put_header(out, *epoch, *key, *ts);
        }
    }
}

fn put_tag(out: &mut BytesMut, tag: u8, trace: TraceId) {
    if trace.is_sampled() {
        out.put_u8(tag | TRACE_FLAG);
        out.put_u64_le(trace.0);
    } else {
        out.put_u8(tag);
    }
}

fn put_header(out: &mut BytesMut, epoch: Epoch, key: Key, ts: Ts) {
    out.put_u64_le(epoch.0);
    out.put_u64_le(key.0);
    out.put_u64_le(ts.version);
    out.put_u32_le(ts.cid);
}

/// Encodes `msg` into a fresh buffer, without trace context.
pub fn encode(msg: &Msg) -> Bytes {
    let out = encode_traced(msg, TraceId::NONE);
    debug_assert_eq!(out.len(), msg.wire_size(), "codec must match wire_size");
    out
}

/// Encodes `msg` carrying `trace` into a fresh buffer.
pub fn encode_traced(msg: &Msg, trace: TraceId) -> Bytes {
    let mut out = BytesMut::with_capacity(msg.wire_size_traced(trace.is_sampled()));
    encode_traced_into(msg, trace, &mut out);
    debug_assert_eq!(
        out.len(),
        msg.wire_size_traced(trace.is_sampled()),
        "codec must match wire_size_traced"
    );
    out.freeze()
}

/// Decodes one message from `buf`, discarding any trace context.
///
/// # Errors
///
/// Returns a [`DecodeError`] if the buffer is truncated or contains invalid
/// tag/kind/length fields.
pub fn decode(buf: &[u8]) -> Result<Msg, DecodeError> {
    decode_traced(buf).map(|(msg, _)| msg)
}

/// Decodes one message plus its trace context ([`TraceId::NONE`] when the
/// tag byte carries no [`TRACE_FLAG`]).
///
/// # Errors
///
/// Returns a [`DecodeError`] if the buffer is truncated or contains invalid
/// tag/kind/length fields.
pub fn decode_traced(buf: &[u8]) -> Result<(Msg, TraceId), DecodeError> {
    let raw = *buf.first().ok_or(DecodeError::Truncated)?;
    let (trace, body) = if raw & TRACE_FLAG != 0 {
        if buf.len() < 9 {
            return Err(DecodeError::Truncated);
        }
        let id = u64::from_le_bytes(buf[1..9].try_into().expect("sized"));
        (TraceId(id), &buf[9..])
    } else {
        (TraceId::NONE, &buf[1..])
    };
    // Fixed header past the tag/trace prefix: epoch + key + version + cid.
    const HEADER: usize = 8 + 8 + 8 + 4;
    if body.len() < HEADER {
        return Err(DecodeError::Truncated);
    }
    let epoch = Epoch(u64::from_le_bytes(body[0..8].try_into().expect("sized")));
    let key = Key(u64::from_le_bytes(body[8..16].try_into().expect("sized")));
    let ts = Ts::new(
        u64::from_le_bytes(body[16..24].try_into().expect("sized")),
        u32::from_le_bytes(body[24..28].try_into().expect("sized")),
    );
    let msg = match raw & !TRACE_FLAG {
        TAG_ACK => Msg::Ack { key, ts, epoch },
        TAG_VAL => Msg::Val { key, ts, epoch },
        TAG_INV => {
            if body.len() < HEADER + 5 {
                return Err(DecodeError::Truncated);
            }
            let kind = match body[HEADER] {
                KIND_WRITE => UpdateKind::Write,
                KIND_RMW => UpdateKind::Rmw,
                other => return Err(DecodeError::BadKind(other)),
            };
            let vlen = u32::from_le_bytes(body[HEADER + 1..HEADER + 5].try_into().expect("sized"))
                as usize;
            let start = HEADER + 5;
            if body.len() < start + vlen {
                return Err(DecodeError::BadValueLength);
            }
            let value = Value::from(body[start..start + vlen].to_vec());
            Msg::Inv {
                key,
                ts,
                value,
                kind,
                epoch,
            }
        }
        _ => return Err(DecodeError::BadTag(raw)),
    };
    Ok((msg, trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Msg> {
        vec![
            Msg::Inv {
                key: Key(7),
                ts: Ts::new(3, 1),
                value: Value::filled(0xAB, 32),
                kind: UpdateKind::Write,
                epoch: Epoch(2),
            },
            Msg::Inv {
                key: Key(u64::MAX),
                ts: Ts::new(u64::MAX, u32::MAX),
                value: Value::EMPTY,
                kind: UpdateKind::Rmw,
                epoch: Epoch(u64::MAX),
            },
            Msg::Ack {
                key: Key(0),
                ts: Ts::ZERO,
                epoch: Epoch(0),
            },
            Msg::Val {
                key: Key(123),
                ts: Ts::new(9, 4),
                epoch: Epoch(1),
            },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for msg in samples() {
            let encoded = encode(&msg);
            let decoded = decode(&encoded).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn encoded_size_matches_wire_size() {
        for msg in samples() {
            assert_eq!(encode(&msg).len(), msg.wire_size(), "msg: {msg:?}");
        }
        // And scales with value size.
        let big = Msg::Inv {
            key: Key(1),
            ts: Ts::new(1, 1),
            value: Value::filled(1, 1024),
            kind: UpdateKind::Write,
            epoch: Epoch(1),
        };
        assert_eq!(encode(&big).len(), big.wire_size());
    }

    #[test]
    fn traced_roundtrip_all_variants() {
        let trace = TraceId(0xdead_beef_1234_5678);
        for msg in samples() {
            let encoded = encode_traced(&msg, trace);
            let (decoded, got) = decode_traced(&encoded).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(got, trace);
            // The legacy decoder still understands traced frames.
            assert_eq!(decode(&encoded).unwrap(), msg);
        }
    }

    #[test]
    fn unsampled_trace_is_byte_identical_and_free() {
        for msg in samples() {
            let plain = encode(&msg);
            let traced_none = encode_traced(&msg, TraceId::NONE);
            assert_eq!(plain, traced_none, "NONE must add zero wire bytes");
            let (decoded, trace) = decode_traced(&plain).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(trace, TraceId::NONE);
        }
    }

    #[test]
    fn traced_size_matches_wire_size_traced_pin() {
        // The sim bandwidth model charges `wire_size` (it never samples);
        // this pins the codec to `wire_size_traced` in both shapes so the
        // model stays honest with tracing on and off.
        for msg in samples() {
            assert_eq!(
                encode_traced(&msg, TraceId::NONE).len(),
                msg.wire_size_traced(false)
            );
            assert_eq!(encode_traced(&msg, TraceId::NONE).len(), msg.wire_size());
            assert_eq!(
                encode_traced(&msg, TraceId(42)).len(),
                msg.wire_size_traced(true)
            );
            assert_eq!(
                encode_traced(&msg, TraceId(42)).len(),
                msg.wire_size() + 8,
                "a sampled trace costs exactly 8 bytes"
            );
        }
    }

    #[test]
    fn truncated_traced_buffers_error() {
        let full = encode_traced(&samples()[0], TraceId(7));
        for cut in 0..full.len() {
            assert!(
                decode_traced(&full[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
        let (msg, trace) = decode_traced(&full).unwrap();
        assert_eq!(msg, samples()[0]);
        assert_eq!(trace, TraceId(7));
    }

    #[test]
    fn truncated_buffers_error() {
        let full = encode(&samples()[0]);
        for cut in [0, 1, 10, 28, 30] {
            assert!(
                decode(&full[..cut.min(full.len())]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn bad_tag_and_kind_error() {
        let mut buf = encode(&samples()[2]).to_vec();
        buf[0] = 99;
        assert_eq!(decode(&buf), Err(DecodeError::BadTag(99)));

        let mut inv = encode(&samples()[0]).to_vec();
        inv[29] = 7; // kind byte
        assert_eq!(decode(&inv), Err(DecodeError::BadKind(7)));
    }

    #[test]
    fn value_length_is_validated() {
        let mut inv = encode(&samples()[0]).to_vec();
        // Declare a value longer than the buffer.
        inv[30..34].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode(&inv), Err(DecodeError::BadValueLength));
    }

    #[test]
    fn bad_tag_under_trace_flag_reports_raw_byte() {
        let mut buf = encode_traced(&samples()[2], TraceId(9)).to_vec();
        buf[0] = TRACE_FLAG | 0x55;
        assert_eq!(
            decode_traced(&buf),
            Err(DecodeError::BadTag(TRACE_FLAG | 0x55))
        );
    }
}
