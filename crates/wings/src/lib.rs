//! # hermes-wings — the messaging layer (paper §4.2)
//!
//! The paper builds *Wings*, an RPC library over RDMA UD sends, providing:
//! opportunistic batching of messages into network packets, application-level
//! credit-based flow control, a software broadcast primitive, and a compact
//! wire format. This crate reproduces those mechanisms over the byte-oriented
//! transports of `hermes-net` (the substitution table is in DESIGN.md §1):
//!
//! * [`codec`] — the wire format for Hermes protocol messages, matching the
//!   message layouts of paper Figure 3 byte-for-byte with
//!   [`hermes_core::Msg::wire_size`];
//! * [`Batcher`] — opportunistic batching: messages to the same receiver
//!   that are ready at the same poll are packed into one frame, amortizing
//!   header overhead; the batcher never waits to fill a batch;
//! * [`CreditFlow`] — credit-based flow control with implicit credits
//!   (responses) and explicit, batched credit-update messages;
//! * [`client`] — the request/response wire format of the client-facing
//!   RPC port served by `hermesd` replica daemons;
//! * [`control`] — the control-plane frame kind (zero-count escape)
//!   carrying membership traffic and shadow-replica catch-up streams next
//!   to the data frames;
//! * broadcast is a series of unicasts sharing one payload
//!   (`bytes::Bytes` clones), mirroring Wings' linked-list of work requests
//!   pointing at a single buffer.
//!
//! # Examples
//!
//! ```
//! use hermes_common::NodeId;
//! use hermes_wings::Batcher;
//!
//! let mut batcher = Batcher::new(1500, 16);
//! batcher.push(NodeId(1), b"msg-a");
//! batcher.push(NodeId(1), b"msg-b");
//! batcher.push(NodeId(2), b"msg-c");
//! let frames = batcher.flush_all();
//! assert_eq!(frames.len(), 2, "one frame per receiver");
//! let (_, frame) = &frames[0];
//! assert_eq!(hermes_wings::decode_frame(frame).unwrap().len(), 2);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod codec;
pub mod control;

mod batch;
mod credits;

pub use batch::{decode_frame, BatchStats, Batcher, FrameError};
pub use credits::{CreditConfig, CreditFlow};
