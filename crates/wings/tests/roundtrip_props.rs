//! Property tests: codec and batching must round-trip arbitrary messages
//! without loss, duplication or reordering.

use bytes::Bytes;
use hermes_common::{Epoch, Key, NodeId, Value};
use hermes_core::{Msg, Ts, UpdateKind};
use hermes_wings::{codec, decode_frame, Batcher};
use proptest::prelude::*;

fn msg_strategy() -> impl Strategy<Value = Msg> {
    prop_oneof![
        (
            any::<u64>(),
            any::<u64>(),
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..128),
            any::<bool>(),
            any::<u64>()
        )
            .prop_map(|(key, version, cid, value, rmw, epoch)| Msg::Inv {
                key: Key(key),
                ts: Ts::new(version, cid),
                value: Value::from(value),
                kind: if rmw {
                    UpdateKind::Rmw
                } else {
                    UpdateKind::Write
                },
                epoch: Epoch(epoch),
            }),
        (any::<u64>(), any::<u64>(), any::<u32>(), any::<u64>()).prop_map(
            |(key, version, cid, epoch)| Msg::Ack {
                key: Key(key),
                ts: Ts::new(version, cid),
                epoch: Epoch(epoch),
            }
        ),
        (any::<u64>(), any::<u64>(), any::<u32>(), any::<u64>()).prop_map(
            |(key, version, cid, epoch)| Msg::Val {
                key: Key(key),
                ts: Ts::new(version, cid),
                epoch: Epoch(epoch),
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn codec_roundtrips_arbitrary_messages(msg in msg_strategy()) {
        let encoded = codec::encode(&msg);
        prop_assert_eq!(encoded.len(), msg.wire_size());
        let decoded = codec::decode(&encoded).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = codec::decode(&bytes); // must return Err, not panic
        let _ = codec::decode_traced(&bytes);
    }

    #[test]
    fn traced_codec_roundtrips_and_pins_wire_size(msg in msg_strategy(), trace in any::<u64>()) {
        let trace = hermes_obs::TraceId(trace);
        let encoded = codec::encode_traced(&msg, trace);
        // The wire_size pin holds in both shapes: unsampled frames are
        // byte-identical to the plain codec (what the sim bandwidth model
        // charges); sampled frames cost exactly 8 extra bytes.
        prop_assert_eq!(encoded.len(), msg.wire_size_traced(trace.is_sampled()));
        if !trace.is_sampled() {
            prop_assert_eq!(&encoded, &codec::encode(&msg));
        }
        let (decoded, got) = codec::decode_traced(&encoded).unwrap();
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(got, trace);
    }

    #[test]
    fn batcher_conserves_arbitrary_streams(
        msgs in proptest::collection::vec((any::<u8>(), msg_strategy()), 1..80),
        frame_bytes in 64usize..2048,
        max_msgs in 1usize..32,
    ) {
        let mut batcher = Batcher::new(frame_bytes, max_msgs);
        let mut sent_by_peer: std::collections::BTreeMap<u8, Vec<Msg>> = Default::default();
        let mut recv_by_peer: std::collections::BTreeMap<u8, Vec<Msg>> = Default::default();
        let mut frames: Vec<(u8, Bytes)> = Vec::new();
        for (peer, msg) in &msgs {
            let peer = peer % 4;
            sent_by_peer.entry(peer).or_default().push(msg.clone());
            if let Some((to, frame)) = batcher.push(NodeId(peer as u32), &codec::encode(msg)) {
                frames.push((to.0 as u8, frame));
            }
        }
        for (to, frame) in batcher.flush_all() {
            frames.push((to.0 as u8, frame));
        }
        for (peer, frame) in frames {
            for raw in decode_frame(&frame).unwrap() {
                recv_by_peer.entry(peer).or_default().push(codec::decode(&raw).unwrap());
            }
        }
        // Per-peer FIFO conservation: same messages, same order.
        prop_assert_eq!(sent_by_peer, recv_by_peer);
    }
}
