//! The pluggable transport abstraction behind every cluster runtime.
//!
//! The paper's Hermes runs over RDMA unreliable datagrams; this workspace
//! runs the same protocol over whichever substrate fits the deployment:
//! crossbeam channels inside one process ([`InProcNet`]) or length-prefixed
//! frames over real TCP sockets ([`TcpNet`]) for multi-process clusters.
//! Both implement the same two-trait contract so runtimes are written once:
//!
//! * [`Transport`] — a factory producing one [`Endpoint`] per node;
//! * [`Endpoint`] — one node's attachment: a cloneable transmit half
//!   ([`NetSender`]) plus a *push-based* receive half. Instead of being
//!   polled, an endpoint is [`Endpoint::start`]ed with an [`IngressSink`]
//!   and delivers every [`NetEvent`] into it from its own threads. Runtimes
//!   point the sink at the same queue that carries client commands, which
//!   is what makes worker wakeup event-driven: one blocking `recv` covers
//!   network ingress *and* client ingress, with no idle-poll floor.
//!
//! The service model every transport must preserve is the paper's (§3.4):
//! datagrams may be dropped, duplicated and reordered — Hermes' message-loss
//! timeouts absorb all three, and they also absorb a TCP connection dying
//! and being re-dialed (frames buffered in the dead socket are simply
//! "dropped datagrams").
//!
//! [`InProcNet`]: crate::InProcNet
//! [`TcpNet`]: crate::TcpNet

use bytes::Bytes;
use hermes_common::NodeId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One event surfaced by a transport's ingress path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetEvent {
    /// A datagram (one Wings frame) arrived from a peer.
    Frame(NodeId, Bytes),
    /// The connection carrying a peer's traffic died (TCP reader saw
    /// EOF/error). Purely informational: the protocol needs no action —
    /// message-loss timeouts already cover the lost frames — but runtimes
    /// count these so operators and tests can observe fault paths.
    PeerDown(NodeId),
    /// A peer's connection was (re-)established toward this node.
    PeerUp(NodeId),
}

/// Consumes ingress events; returns `false` when the receiver is gone and
/// delivery threads should stop.
///
/// Shared across however many reader threads a transport runs, so it must
/// be callable concurrently.
pub type IngressSink = Arc<dyn Fn(NetEvent) -> bool + Send + Sync>;

/// The transmit half of a node's network attachment.
///
/// Cloneable and shareable: on a multi-worker replica every worker thread
/// holds a clone and sends its Wings frames directly — the shared sender
/// *is* the node's merged egress. Sends never block and may silently drop
/// (unreachable peer, injected fault, dead connection): datagram semantics.
pub trait NetSender: Clone + Send + 'static {
    /// The node this sender transmits as.
    fn node_id(&self) -> NodeId;

    /// Sends one datagram to `to`. Never blocks; silently drops on any
    /// failure (the protocol's loss timeouts recover).
    fn send(&self, to: NodeId, payload: Bytes);
}

/// One node's attachment to a [`Transport`].
pub trait Endpoint: Send + std::fmt::Debug + 'static {
    /// The transmit half this endpoint hands to worker threads.
    type Sender: NetSender;

    /// This endpoint's node id.
    fn node_id(&self) -> NodeId;

    /// A cloneable transmit handle for this node.
    fn sender(&self) -> Self::Sender;

    /// Consumes the endpoint and starts delivering ingress into `sink`
    /// from transport-owned threads. Delivery runs until the returned
    /// [`IngressGuard`] is stopped or the sink reports the receiver gone.
    fn start(self, sink: IngressSink) -> IngressGuard;
}

/// A network: one [`Endpoint`] per node, however they are wired.
pub trait Transport {
    /// The per-node endpoint type.
    type Endpoint: Endpoint;

    /// Extracts the endpoints, one per node, to hand to node runtimes.
    fn into_endpoints(self) -> Vec<Self::Endpoint>;
}

/// Owns the delivery threads spawned by [`Endpoint::start`]; stopping it
/// signals them and joins them.
#[derive(Debug)]
pub struct IngressGuard {
    stop: Arc<AtomicBool>,
    handles: Vec<JoinHandle<()>>,
}

impl IngressGuard {
    /// Builds a guard over `handles`, all of which watch `stop`.
    pub fn new(stop: Arc<AtomicBool>, handles: Vec<JoinHandle<()>>) -> Self {
        IngressGuard { stop, handles }
    }

    /// Signals every delivery thread to stop and joins them.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for IngressGuard {
    fn drop(&mut self) {
        self.halt();
    }
}
