use hermes_common::{NodeId, NodeSet};
use hermes_sim::rng::Rng;
use hermes_sim::{SimDuration, SimTime};

/// Parameters of the simulated datacenter network.
///
/// Defaults approximate the paper's testbed: a single-switch 56 Gb/s
/// InfiniBand fabric with ~2 µs one-way latency for small messages.
#[derive(Clone, Copy, Debug)]
pub struct SimNetConfig {
    /// Fixed one-way propagation + switching latency.
    pub base_latency: SimDuration,
    /// Mean of the exponential jitter added per message.
    pub jitter_mean: SimDuration,
    /// Per-NIC line rate in gigabits per second (serialization delay and
    /// bandwidth ceiling).
    pub bandwidth_gbps: f64,
    /// Per-message header overhead in bytes charged to the wire (UD + RPC
    /// headers; batching amortizes this at the Wings layer).
    pub header_bytes: usize,
    /// Probability that a message is silently lost.
    pub drop_prob: f64,
    /// Probability that a message is delivered twice.
    pub duplicate_prob: f64,
}

impl Default for SimNetConfig {
    fn default() -> Self {
        SimNetConfig {
            base_latency: SimDuration::micros(2),
            jitter_mean: SimDuration::nanos(300),
            bandwidth_gbps: 56.0,
            header_bytes: 42,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
        }
    }
}

/// What happens to one transmitted message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// Delivered once, at the given time.
    Deliver(SimTime),
    /// Delivered twice (network duplication), at the given times.
    DeliverDup(SimTime, SimTime),
    /// Silently lost.
    Drop,
}

/// Deterministic delivery policy for a simulated cluster network.
///
/// `SimNet` does not move bytes; it answers, for every send, *when* (and
/// whether) the message arrives. The discrete-event driver inserts the
/// corresponding delivery events into its scheduler. Modeled effects:
///
/// * per-NIC transmit serialization: a node's NIC is busy for
///   `bytes / bandwidth` per message, so bursts queue (this is what caps
///   write throughput at high write ratios, paper §6.1);
/// * propagation latency plus exponential jitter;
/// * probabilistic loss and duplication (paper §3.4 *Imperfect Links*);
/// * crash-stopped nodes and network partitions (messages across partition
///   boundaries are dropped, paper §3.4 *Network Partitions*).
#[derive(Debug)]
pub struct SimNet {
    cfg: SimNetConfig,
    rng: Rng,
    nic_free_at: Vec<SimTime>,
    crashed: NodeSet,
    /// Partition id per node; messages between different ids drop.
    partition_of: Vec<u8>,
}

impl SimNet {
    /// Creates a network connecting `n` nodes.
    pub fn new(n: usize, cfg: SimNetConfig, seed: u64) -> Self {
        SimNet {
            cfg,
            rng: Rng::seeded(seed),
            nic_free_at: vec![SimTime::ZERO; n],
            crashed: NodeSet::EMPTY,
            partition_of: vec![0; n],
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> SimNetConfig {
        self.cfg
    }

    /// Marks a node as crash-stopped: it neither sends nor receives.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Whether `node` has crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(node)
    }

    /// Splits the network: nodes in `minority` can no longer exchange
    /// messages with the rest.
    pub fn partition(&mut self, minority: NodeSet) {
        for (i, p) in self.partition_of.iter_mut().enumerate() {
            *p = u8::from(minority.contains(NodeId(i as u32)));
        }
    }

    /// Heals all partitions.
    pub fn heal(&mut self) {
        self.partition_of.fill(0);
    }

    /// Transmit (serialization) time of a message of `bytes` payload.
    fn tx_time(&self, bytes: usize) -> SimDuration {
        let bits = ((bytes + self.cfg.header_bytes) * 8) as f64;
        SimDuration::from_secs_f64(bits / (self.cfg.bandwidth_gbps * 1e9))
    }

    /// Plans the delivery of a `bytes`-sized message sent at `now`.
    ///
    /// Mutates internal state (NIC busy times, RNG), so call exactly once
    /// per transmitted message, in send order.
    pub fn plan_delivery(
        &mut self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        now: SimTime,
    ) -> DeliveryOutcome {
        if self.crashed.contains(from) || self.crashed.contains(to) {
            return DeliveryOutcome::Drop;
        }
        if self.partition_of[from.index()] != self.partition_of[to.index()] {
            return DeliveryOutcome::Drop;
        }

        // NIC transmit serialization at the sender.
        let tx = self.tx_time(bytes);
        let start = self.nic_free_at[from.index()].max(now);
        let tx_end = start + tx;
        self.nic_free_at[from.index()] = tx_end;

        if self.rng.gen_bool(self.cfg.drop_prob) {
            // The NIC still spent the transmit time; the packet died in the
            // fabric.
            return DeliveryOutcome::Drop;
        }

        let jitter = if self.cfg.jitter_mean.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(self.rng.gen_exp(self.cfg.jitter_mean.as_secs_f64()))
        };
        let arrival = tx_end + self.cfg.base_latency + jitter;

        if self.rng.gen_bool(self.cfg.duplicate_prob) {
            let extra = SimDuration::from_secs_f64(
                self.rng
                    .gen_exp(self.cfg.base_latency.as_secs_f64().max(1e-9)),
            );
            DeliveryOutcome::DeliverDup(arrival, arrival + extra)
        } else {
            DeliveryOutcome::Deliver(arrival)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless() -> SimNetConfig {
        SimNetConfig {
            jitter_mean: SimDuration::ZERO,
            ..SimNetConfig::default()
        }
    }

    #[test]
    fn delivery_includes_latency_and_tx_time() {
        let mut net = SimNet::new(2, lossless(), 1);
        let out = net.plan_delivery(NodeId(0), NodeId(1), 58, SimTime::ZERO);
        let DeliveryOutcome::Deliver(at) = out else {
            panic!("expected delivery, got {out:?}");
        };
        // (58 + 42) bytes = 800 bits at 56 Gb/s ≈ 14.3 ns tx + 2 us latency.
        let expect_ns = 2_000 + (800.0 / 56.0) as u64;
        assert!(
            (at.as_nanos() as i64 - expect_ns as i64).abs() <= 2,
            "arrival {at:?}, expected ~{expect_ns}ns"
        );
    }

    #[test]
    fn nic_serialization_queues_bursts() {
        let mut net = SimNet::new(2, lossless(), 1);
        // Two large back-to-back messages from the same sender: the second
        // must arrive at least one transmit-time after the first.
        let a = net.plan_delivery(NodeId(0), NodeId(1), 100_000, SimTime::ZERO);
        let b = net.plan_delivery(NodeId(0), NodeId(1), 100_000, SimTime::ZERO);
        let (DeliveryOutcome::Deliver(ta), DeliveryOutcome::Deliver(tb)) = (a, b) else {
            panic!("expected deliveries");
        };
        let tx_ns = ((100_042 * 8) as f64 / 56.0) as u64;
        assert!(tb.as_nanos() - ta.as_nanos() >= tx_ns - 2);
    }

    #[test]
    fn different_senders_do_not_serialize_on_each_other() {
        let mut net = SimNet::new(3, lossless(), 1);
        let a = net.plan_delivery(NodeId(0), NodeId(2), 100_000, SimTime::ZERO);
        let b = net.plan_delivery(NodeId(1), NodeId(2), 100_000, SimTime::ZERO);
        let (DeliveryOutcome::Deliver(ta), DeliveryOutcome::Deliver(tb)) = (a, b) else {
            panic!("expected deliveries");
        };
        assert_eq!(ta, tb, "independent NICs transmit in parallel");
    }

    #[test]
    fn drop_probability_is_respected() {
        let cfg = SimNetConfig {
            drop_prob: 0.3,
            jitter_mean: SimDuration::ZERO,
            ..SimNetConfig::default()
        };
        let mut net = SimNet::new(2, cfg, 7);
        let n = 20_000;
        let mut drops = 0;
        for i in 0..n {
            let t = SimTime::from_nanos(i * 10_000);
            if net.plan_delivery(NodeId(0), NodeId(1), 64, t) == DeliveryOutcome::Drop {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "drop rate {rate}");
    }

    #[test]
    fn duplication_produces_two_ordered_arrivals() {
        let cfg = SimNetConfig {
            duplicate_prob: 1.0,
            ..SimNetConfig::default()
        };
        let mut net = SimNet::new(2, cfg, 3);
        match net.plan_delivery(NodeId(0), NodeId(1), 64, SimTime::ZERO) {
            DeliveryOutcome::DeliverDup(a, b) => assert!(b >= a),
            other => panic!("expected duplicate, got {other:?}"),
        }
    }

    #[test]
    fn crashed_nodes_neither_send_nor_receive() {
        let mut net = SimNet::new(3, lossless(), 1);
        net.crash(NodeId(1));
        assert!(net.is_crashed(NodeId(1)));
        assert_eq!(
            net.plan_delivery(NodeId(1), NodeId(0), 64, SimTime::ZERO),
            DeliveryOutcome::Drop
        );
        assert_eq!(
            net.plan_delivery(NodeId(0), NodeId(1), 64, SimTime::ZERO),
            DeliveryOutcome::Drop
        );
        assert!(matches!(
            net.plan_delivery(NodeId(0), NodeId(2), 64, SimTime::ZERO),
            DeliveryOutcome::Deliver(_)
        ));
    }

    #[test]
    fn partitions_block_cross_traffic_and_heal() {
        let mut net = SimNet::new(5, lossless(), 1);
        let minority = NodeSet::from_iter([NodeId(3), NodeId(4)]);
        net.partition(minority);
        assert_eq!(
            net.plan_delivery(NodeId(0), NodeId(4), 64, SimTime::ZERO),
            DeliveryOutcome::Drop
        );
        assert!(matches!(
            net.plan_delivery(NodeId(3), NodeId(4), 64, SimTime::ZERO),
            DeliveryOutcome::Deliver(_)
        ));
        assert!(matches!(
            net.plan_delivery(NodeId(0), NodeId(1), 64, SimTime::ZERO),
            DeliveryOutcome::Deliver(_)
        ));
        net.heal();
        assert!(matches!(
            net.plan_delivery(NodeId(0), NodeId(4), 64, SimTime::ZERO),
            DeliveryOutcome::Deliver(_)
        ));
    }

    #[test]
    fn same_seed_reproduces_same_plan() {
        let cfg = SimNetConfig {
            drop_prob: 0.2,
            duplicate_prob: 0.1,
            ..SimNetConfig::default()
        };
        let plan = |seed| {
            let mut net = SimNet::new(2, cfg, seed);
            (0..100)
                .map(|i| net.plan_delivery(NodeId(0), NodeId(1), 64, SimTime::from_nanos(i * 1000)))
                .collect::<Vec<_>>()
        };
        assert_eq!(plan(9), plan(9));
        assert_ne!(plan(9), plan(10));
    }
}
