//! Readiness-driven socket polling: the engine under the sharded-poller
//! client plane (DESIGN.md §7).
//!
//! The paper's RDMA runtime never spends a thread per peer: each worker
//! polls its own receive queues. Our TCP stand-in gets the same shape from
//! the OS readiness APIs — a [`Poller`] owns many non-blocking sockets and
//! one `wait` call reports which of them can make progress, so a small
//! fixed pool of poller threads drives tens of thousands of connections.
//!
//! Two backends, one API:
//!
//! * **Linux** — `epoll(7)`, O(ready) per wait regardless of how many
//!   sockets are registered (the C10K-scaling path the client plane needs);
//! * **other Unix** — `poll(2)`, O(registered) per wait; correct, just not
//!   built for ten thousand sockets.
//!
//! Both are reached through their libc symbols directly (`extern "C"`):
//! the std runtime already links libc, and the offline build must not grow
//! a dependency. Events are level-triggered — a socket that still has
//! buffered bytes keeps reporting readable — which keeps the session state
//! machines free of edge-trigger re-arming subtleties.
//!
//! A [`Waker`] lets other threads (worker lanes completing operations, an
//! acceptor handing over a socket) interrupt a blocked `wait`: it is a
//! self-connected loopback UDP socket registered like any other, so it
//! needs no extra OS machinery and works on every backend.

use std::io;
use std::net::{Ipv4Addr, UdpSocket};
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Which readiness transitions a registration subscribes to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd has bytes to read (or hung up).
    pub read: bool,
    /// Report when the fd can accept writes.
    pub write: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
    /// Keep the fd registered but report nothing (a credit-stalled session
    /// parks here so level-triggered readiness does not spin the poller).
    pub const NONE: Interest = Interest {
        read: false,
        write: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (data buffered, or EOF pending).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The peer hung up or the fd errored; the owner should read to EOF
    /// and reap.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! `epoll(7)` via its libc symbols (std links libc; no new crate).
    use super::{Interest, PollEvent};
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::time::Duration;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Kernel UAPI layout: packed on x86-64 (the one ABI where the struct
    /// is not naturally aligned), natural elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    }

    #[derive(Debug)]
    pub(super) struct Backend {
        epfd: OwnedFd,
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.read {
            m |= EPOLLIN;
        }
        if interest.write {
            m |= EPOLLOUT;
        }
        m
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            // SAFETY: epoll_create1 takes no pointers; a valid fd (or -1)
            // comes back and OwnedFd closes it on drop.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: fd is a freshly created epoll fd we exclusively own.
            Ok(Backend {
                epfd: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub(super) fn reregister(
            &self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            let ms = super::timeout_ms(timeout);
            // SAFETY: buf is a valid writable array of its declared length.
            let n = unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    buf.as_mut_ptr(),
                    buf.len() as i32,
                    ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // Signal during wait: report nothing.
                }
                return Err(e);
            }
            for ev in &buf[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let events = { ev.events };
                let data = { ev.data };
                out.push(PollEvent {
                    token: data,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! Portable fallback: `poll(2)` over the registration table. O(n) per
    //! wait — correct everywhere Unix, but not the C10K path.
    use super::{Interest, PollEvent};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    #[derive(Debug)]
    pub(super) struct Backend {
        table: Mutex<BTreeMap<RawFd, (u64, Interest)>>,
    }

    impl Backend {
        pub(super) fn new() -> io::Result<Backend> {
            Ok(Backend {
                table: Mutex::new(BTreeMap::new()),
            })
        }

        pub(super) fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.table.lock().unwrap().insert(fd, (token, interest));
            Ok(())
        }

        pub(super) fn reregister(
            &self,
            fd: RawFd,
            token: u64,
            interest: Interest,
        ) -> io::Result<()> {
            self.register(fd, token, interest)
        }

        pub(super) fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.table.lock().unwrap().remove(&fd);
            Ok(())
        }

        pub(super) fn wait(
            &self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let mut fds: Vec<(PollFd, u64)> = self
                .table
                .lock()
                .unwrap()
                .iter()
                .map(|(&fd, &(token, interest))| {
                    let mut events = 0i16;
                    if interest.read {
                        events |= POLLIN;
                    }
                    if interest.write {
                        events |= POLLOUT;
                    }
                    (
                        PollFd {
                            fd,
                            events,
                            revents: 0,
                        },
                        token,
                    )
                })
                .collect();
            let mut raw: Vec<PollFd> = fds
                .iter()
                .map(|(p, _)| PollFd {
                    fd: p.fd,
                    events: p.events,
                    revents: 0,
                })
                .collect();
            let ms = super::timeout_ms(timeout);
            // SAFETY: raw is a valid writable array of its declared length.
            let n = unsafe { poll(raw.as_mut_ptr(), raw.len() as u64, ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (p, (_, token)) in raw.iter().zip(fds.drain(..)) {
                if p.revents == 0 {
                    continue;
                }
                out.push(PollEvent {
                    token,
                    readable: p.revents & (POLLIN | POLLHUP) != 0,
                    writable: p.revents & POLLOUT != 0,
                    hangup: p.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

/// Clamps an optional wait budget into the millisecond argument the OS
/// readiness calls take (`-1` blocks; sub-millisecond waits round up so a
/// positive budget never becomes a busy spin).
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) if d.is_zero() => 0,
        Some(d) => d.as_millis().clamp(1, i32::MAX as u128) as i32,
    }
}

/// A readiness multiplexer over many non-blocking sockets.
///
/// Register each fd under a caller-chosen `token`; [`Poller::wait`] reports
/// which tokens can make progress. Level-triggered on every backend.
///
/// # Examples
///
/// ```
/// use hermes_net::{Interest, Poller, Waker};
/// use std::sync::Arc;
///
/// let poller = Poller::new().unwrap();
/// let waker = Arc::new(Waker::new(&poller, 0).unwrap());
/// let handle = {
///     let waker = Arc::clone(&waker);
///     std::thread::spawn(move || waker.wake())
/// };
/// let mut events = Vec::new();
/// while events.is_empty() {
///     poller.wait(&mut events, None).unwrap();
/// }
/// assert_eq!(events[0].token, 0);
/// handle.join().unwrap();
/// ```
#[derive(Debug)]
pub struct Poller {
    backend: sys::Backend,
}

impl Poller {
    /// Creates an empty poller.
    ///
    /// # Errors
    ///
    /// Fails if the OS readiness object cannot be created.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            backend: sys::Backend::new()?,
        })
    }

    /// Starts watching `fd` under `token`. The fd must stay open until
    /// [`Poller::deregister`] (the poller does not own it).
    ///
    /// # Errors
    ///
    /// Fails if the fd cannot be added (already registered, invalid).
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.register(fd, token, interest)
    }

    /// Replaces the token/interest of an already-registered fd.
    ///
    /// # Errors
    ///
    /// Fails if the fd is not registered.
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.backend.reregister(fd, token, interest)
    }

    /// Stops watching `fd`.
    ///
    /// # Errors
    ///
    /// Fails if the fd is not registered.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.backend.deregister(fd)
    }

    /// Appends ready events to `out` (which is *not* cleared), blocking up
    /// to `timeout` (`None`: until something is ready). Returning with no
    /// new events means the timeout elapsed or a signal interrupted the
    /// wait.
    ///
    /// # Errors
    ///
    /// Fails only on unexpected OS errors (`EINTR` is absorbed).
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout: Option<Duration>) -> io::Result<()> {
        self.backend.wait(out, timeout)
    }
}

/// Cross-thread wakeup for a blocked [`Poller::wait`].
///
/// A self-connected loopback UDP socket pair: `wake` sends one datagram,
/// the receiving socket is registered in the poller like any session, and
/// the poller thread [`drain`](Waker::drain)s it on readiness. `wake` is
/// cheap, non-blocking and safe from any thread.
#[derive(Debug)]
pub struct Waker {
    tx: UdpSocket,
    rx: UdpSocket,
}

impl Waker {
    /// Builds a waker and registers its receive side in `poller` under
    /// `token` (read interest).
    ///
    /// # Errors
    ///
    /// Fails if the loopback sockets cannot be created or registered.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let rx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
        rx.set_nonblocking(true)?;
        let tx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
        tx.set_nonblocking(true)?;
        tx.connect(rx.local_addr()?)?;
        poller.register(rx.as_raw_fd(), token, Interest::READ)?;
        Ok(Waker { tx, rx })
    }

    /// Interrupts the poller's current (or next) `wait`. Best-effort: a
    /// full loopback send buffer just means wakes are already pending.
    pub fn wake(&self) {
        let _ = self.tx.send(&[1]);
    }

    /// Discards pending wake datagrams (the poller thread calls this when
    /// the waker's token reports readable).
    pub fn drain(&self) {
        let mut buf = [0u8; 16];
        while self.rx.recv(&mut buf).is_ok() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn reports_read_readiness_only_when_data_arrives() {
        let poller = Poller::new().unwrap();
        let (mut a, b) = pair();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "no data yet: {events:?}");
        a.write_all(b"hi").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        poller.deregister(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn level_triggered_until_drained_and_interest_parks() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = pair();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        a.write_all(b"xyz").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        // Unread data keeps reporting (level-triggered)...
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        // ...until interest is parked: then the poller stays quiet even
        // with bytes still buffered (the credit-stall path).
        poller.reregister(b.as_raw_fd(), 1, Interest::NONE).unwrap();
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "parked fd still reported: {events:?}");
        // Restore interest, drain, and the readiness clears.
        poller.reregister(b.as_raw_fd(), 1, Interest::READ).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 3);
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "drained fd still reported: {events:?}");
    }

    #[test]
    fn hangup_is_reported() {
        let poller = Poller::new().unwrap();
        let (a, b) = pair();
        poller.register(b.as_raw_fd(), 3, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(2);
        while events.is_empty() && Instant::now() < deadline {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
        }
        assert!(
            events
                .iter()
                .any(|e| e.token == 3 && (e.hangup || e.readable)),
            "peer close must surface: {events:?}"
        );
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let poller = Arc::new(Poller::new().unwrap());
        let waker = Arc::new(Waker::new(&poller, 99).unwrap());
        let w = Arc::clone(&waker);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        while events.is_empty() && start.elapsed() < Duration::from_secs(5) {
            poller
                .wait(&mut events, Some(Duration::from_secs(1)))
                .unwrap();
        }
        assert!(events.iter().any(|e| e.token == 99 && e.readable));
        waker.drain();
        // Drained: quiet again.
        events.clear();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());
        h.join().unwrap();
    }

    #[test]
    fn write_interest_fires_for_an_open_socket() {
        let poller = Poller::new().unwrap();
        let (a, _b) = pair();
        poller.register(a.as_raw_fd(), 5, Interest::BOTH).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 5 && e.writable));
    }
}
