//! Real TCP transport: length-prefixed Wings frames over `std::net`.
//!
//! This is the substrate that lets a Hermes replica group run as separate
//! OS processes (one per node) serving real traffic — the deployment shape
//! of the paper's evaluation, with loopback/ethernet TCP standing in for
//! the RDMA NICs (DESIGN.md §4). Per node:
//!
//! * one **listener** accepts inbound connections; each accepted connection
//!   gets its own **reader thread** that handshakes (peer id), then pushes
//!   every received frame into the runtime's [`IngressSink`] — ingress is
//!   push-based, so the consuming worker blocks on *one* queue for network
//!   and client events alike;
//! * one **writer thread per peer** owns the outbound connection, dialing
//!   lazily and re-dialing with exponential backoff after a failure; frames
//!   sent while a peer is unreachable are dropped (datagram semantics —
//!   Hermes' message-loss timeouts retransmit, paper §3.4);
//! * [`TcpSender`] is the cloneable transmit half handed to every worker
//!   thread; a send is one channel push to the peer's writer.
//!
//! Wire format, both directions, after a connection-scoped handshake of
//! `b"HRM1"` + `u32` sender node id: each frame is a `u32` little-endian
//! payload length followed by the payload (one Wings batch frame, whose
//! internal layout is [`hermes-wings`]'s `u16` count + per-message `u32`
//! length prefixes).
//!
//! [`hermes-wings`]: ../../hermes_wings/index.html

use crate::transport::{Endpoint, IngressGuard, IngressSink, NetEvent, NetSender, Transport};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hermes_common::NodeId;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Connection handshake preamble: protocol magic, then the dialer's id.
const MAGIC: [u8; 4] = *b"HRM1";

/// Tuning knobs of the TCP transport.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// First re-dial delay after a failed or dropped connection.
    pub initial_backoff: Duration,
    /// Re-dial delay ceiling (backoff doubles up to this).
    pub max_backoff: Duration,
    /// Poll granularity of blocking reads/accepts (how quickly transport
    /// threads notice shutdown); also the per-attempt dial timeout.
    pub poll: Duration,
    /// Frames larger than this are treated as protocol errors and kill the
    /// connection.
    pub max_frame_bytes: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            poll: Duration::from_millis(25),
            max_frame_bytes: 16 << 20,
        }
    }
}

/// Counters describing one node's TCP transport activity.
///
/// All counters are cumulative and monotone; read them through
/// [`TcpEndpoint::stats`] / [`TcpSender::stats`]. Tests use `disconnects`
/// and `dials` to assert fault paths (a killed connection surfaces, a
/// reconnect happens).
#[derive(Debug, Default)]
pub struct TcpStats {
    frames_sent: AtomicU64,
    bytes_sent: AtomicU64,
    frames_dropped: AtomicU64,
    frames_received: AtomicU64,
    bytes_received: AtomicU64,
    dials: AtomicU64,
    accepts: AtomicU64,
    disconnects: AtomicU64,
}

macro_rules! stat {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        pub fn $name(&self) -> u64 {
            self.$name.load(Ordering::Relaxed)
        }
    };
}

impl TcpStats {
    stat!(
        /// Frames written to a connected peer.
        frames_sent
    );
    stat!(
        /// Payload bytes written (excluding length prefixes).
        bytes_sent
    );
    stat!(
        /// Frames dropped because the peer was unreachable (reconnect
        /// pending) — the transport's "lost datagrams".
        frames_dropped
    );
    stat!(
        /// Frames received from peers.
        frames_received
    );
    stat!(
        /// Payload bytes received.
        bytes_received
    );
    stat!(
        /// Successful outbound dials (first connects and reconnects).
        dials
    );
    stat!(
        /// Inbound connections accepted.
        accepts
    );
    stat!(
        /// Connections that died: reader EOF/error, write failure, or an
        /// injected [`TcpSender::kill_connection`].
        disconnects
    );

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

/// Commands consumed by a peer's writer thread.
enum WriterCmd {
    /// Transmit one frame.
    Frame(Bytes),
    /// Tear down the live connection (fault injection for tests); the
    /// writer re-dials with backoff on the next frame.
    Kill,
}

/// The transmit half of a node's TCP attachment. Cloneable; every worker
/// thread of a replica holds one.
#[derive(Clone)]
pub struct TcpSender {
    me: NodeId,
    writers: Arc<Vec<Option<Sender<WriterCmd>>>>,
    stats: Arc<TcpStats>,
}

impl TcpSender {
    /// Number of nodes in the peer table.
    pub fn cluster_size(&self) -> usize {
        self.writers.len()
    }

    /// Transport counters of this node.
    pub fn stats(&self) -> Arc<TcpStats> {
        Arc::clone(&self.stats)
    }

    /// Forcibly tears down the live outbound connection to `to` (no-op if
    /// none). The transport reconnects with backoff on the next send —
    /// this is the fault-injection hook behind the disconnect tests.
    pub fn kill_connection(&self, to: NodeId) {
        if let Some(Some(tx)) = self.writers.get(to.index()) {
            let _ = tx.send(WriterCmd::Kill);
        }
    }
}

impl NetSender for TcpSender {
    fn node_id(&self) -> NodeId {
        self.me
    }

    fn send(&self, to: NodeId, payload: Bytes) {
        match self.writers.get(to.index()) {
            Some(Some(tx)) => {
                if tx.send(WriterCmd::Frame(payload)).is_err() {
                    TcpStats::bump(&self.stats.frames_dropped);
                }
            }
            // Self-sends and out-of-range destinations drop silently,
            // matching the in-process transport.
            _ => TcpStats::bump(&self.stats.frames_dropped),
        }
    }
}

impl std::fmt::Debug for TcpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSender")
            .field("me", &self.me)
            .field("cluster_size", &self.writers.len())
            .finish()
    }
}

/// One node's TCP attachment: a bound listener plus per-peer writers.
pub struct TcpEndpoint {
    me: NodeId,
    listener: TcpListener,
    sender: TcpSender,
    stats: Arc<TcpStats>,
    cfg: TcpConfig,
    stop: Arc<AtomicBool>,
    writer_handles: Vec<JoinHandle<()>>,
}

impl TcpEndpoint {
    /// Binds node `me`'s listener at `peers[me]` and spawns one writer
    /// thread per other peer (connections are dialed lazily).
    ///
    /// # Errors
    ///
    /// Fails if the listen address cannot be bound.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range of `peers`.
    pub fn bind(me: NodeId, peers: &[SocketAddr], cfg: TcpConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(peers[me.index()])?;
        Self::from_listener(me, listener, peers, cfg)
    }

    /// Wraps an already-bound `listener` (used by [`TcpNet::loopback`],
    /// which must learn ephemeral port numbers before wiring peers).
    pub fn from_listener(
        me: NodeId,
        listener: TcpListener,
        peers: &[SocketAddr],
        cfg: TcpConfig,
    ) -> std::io::Result<Self> {
        listener.set_nonblocking(true)?;
        let stats = Arc::new(TcpStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let mut writers = Vec::with_capacity(peers.len());
        let mut writer_handles = Vec::new();
        for (i, &addr) in peers.iter().enumerate() {
            if i == me.index() {
                writers.push(None);
                continue;
            }
            let (tx, rx) = unbounded();
            writers.push(Some(tx));
            let stats = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            writer_handles.push(std::thread::spawn(move || {
                writer_main(me, addr, rx, stats, stop, cfg);
            }));
        }
        let sender = TcpSender {
            me,
            writers: Arc::new(writers),
            stats: Arc::clone(&stats),
        };
        Ok(TcpEndpoint {
            me,
            listener,
            sender,
            stats,
            cfg,
            stop,
            writer_handles,
        })
    }

    /// The address this node's listener actually bound (resolves `:0`).
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the local address cannot be read.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Transport counters of this node.
    pub fn stats(&self) -> Arc<TcpStats> {
        Arc::clone(&self.stats)
    }
}

impl Endpoint for TcpEndpoint {
    type Sender = TcpSender;

    fn node_id(&self) -> NodeId {
        self.me
    }

    fn sender(&self) -> TcpSender {
        self.sender.clone()
    }

    fn start(self, sink: IngressSink) -> IngressGuard {
        let TcpEndpoint {
            listener,
            stats,
            cfg,
            stop,
            mut writer_handles,
            ..
        } = self;
        let acceptor_stop = Arc::clone(&stop);
        let acceptor = std::thread::spawn(move || {
            accept_main(listener, sink, stats, acceptor_stop, cfg);
        });
        writer_handles.push(acceptor);
        IngressGuard::new(stop, writer_handles)
    }
}

impl std::fmt::Debug for TcpEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpEndpoint")
            .field("me", &self.me)
            .field("listen", &self.listener.local_addr().ok())
            .field("cluster_size", &self.sender.cluster_size())
            .finish()
    }
}

/// A fully in-process loopback TCP cluster: `n` nodes, each with a real
/// listener on `127.0.0.1`, wired to each other. Lets tests and benches
/// run the socket transport without spawning processes.
///
/// # Examples
///
/// ```
/// use hermes_net::{Transport, TcpNet};
///
/// let endpoints = TcpNet::loopback(3).unwrap().into_endpoints();
/// assert_eq!(endpoints.len(), 3);
/// ```
#[derive(Debug)]
pub struct TcpNet {
    endpoints: Vec<TcpEndpoint>,
}

impl TcpNet {
    /// Builds an `n`-node loopback cluster on ephemeral ports.
    ///
    /// # Errors
    ///
    /// Fails if a loopback listener cannot be bound.
    pub fn loopback(n: usize) -> std::io::Result<Self> {
        Self::loopback_with(n, TcpConfig::default())
    }

    /// [`TcpNet::loopback`] with explicit transport tuning.
    ///
    /// # Errors
    ///
    /// Fails if a loopback listener cannot be bound.
    pub fn loopback_with(n: usize, cfg: TcpConfig) -> std::io::Result<Self> {
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        let peers: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr())
            .collect::<std::io::Result<_>>()?;
        let endpoints = listeners
            .into_iter()
            .enumerate()
            .map(|(i, l)| TcpEndpoint::from_listener(NodeId(i as u32), l, &peers, cfg))
            .collect::<std::io::Result<_>>()?;
        Ok(TcpNet { endpoints })
    }

    /// The endpoints' listen addresses, indexed by node id.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if a local address cannot be read.
    pub fn addrs(&self) -> std::io::Result<Vec<SocketAddr>> {
        self.endpoints.iter().map(|e| e.local_addr()).collect()
    }
}

impl Transport for TcpNet {
    type Endpoint = TcpEndpoint;

    fn into_endpoints(self) -> Vec<TcpEndpoint> {
        self.endpoints
    }
}

/// Per-peer writer loop: dial lazily, re-dial with exponential backoff,
/// drop frames while unreachable.
fn writer_main(
    me: NodeId,
    addr: SocketAddr,
    rx: Receiver<WriterCmd>,
    stats: Arc<TcpStats>,
    stop: Arc<AtomicBool>,
    cfg: TcpConfig,
) {
    let mut stream: Option<TcpStream> = None;
    let mut backoff = cfg.initial_backoff;
    let mut next_attempt = Instant::now();
    // Tears down the live connection (if any) and schedules the re-dial.
    fn disconnect(
        stream: &mut Option<TcpStream>,
        stats: &TcpStats,
        next_attempt: &mut Instant,
        attempt_in: Duration,
    ) {
        if let Some(dead) = stream.take() {
            let _ = dead.shutdown(Shutdown::Both);
            TcpStats::bump(&stats.disconnects);
        }
        *next_attempt = Instant::now() + attempt_in;
    }
    while !stop.load(Ordering::Relaxed) {
        match rx.recv_timeout(cfg.poll) {
            Ok(WriterCmd::Frame(payload)) => {
                if stream.is_none() && Instant::now() >= next_attempt {
                    match dial(me, addr, cfg) {
                        Ok(s) => {
                            TcpStats::bump(&stats.dials);
                            backoff = cfg.initial_backoff;
                            stream = Some(s);
                        }
                        Err(_) => {
                            next_attempt = Instant::now() + backoff;
                            backoff = (backoff * 2).min(cfg.max_backoff);
                        }
                    }
                }
                let Some(s) = stream.as_mut() else {
                    TcpStats::bump(&stats.frames_dropped);
                    continue;
                };
                if write_frame(s, &payload).is_ok() {
                    TcpStats::bump(&stats.frames_sent);
                    TcpStats::add(&stats.bytes_sent, payload.len() as u64);
                } else {
                    TcpStats::bump(&stats.frames_dropped);
                    disconnect(&mut stream, &stats, &mut next_attempt, backoff);
                    backoff = (backoff * 2).min(cfg.max_backoff);
                }
            }
            Ok(WriterCmd::Kill) => {
                disconnect(&mut stream, &stats, &mut next_attempt, Duration::ZERO)
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    if let Some(s) = stream.take() {
        let _ = s.shutdown(Shutdown::Both);
    }
}

/// Writes one length-prefixed frame to any stream speaking this
/// transport's framing (`u32` little-endian length, then the payload).
/// Shared by the replica links here and the client-port RPC service in
/// `hermes-replica`.
///
/// # Errors
///
/// Propagates the underlying I/O error; callers treat any error as a dead
/// connection.
pub fn write_frame_to(s: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    write_frame(s, payload)
}

/// Result of [`read_frame_from`].
#[derive(Debug)]
pub enum FrameRead {
    /// One complete frame payload.
    Frame(Vec<u8>),
    /// The stream closed (EOF or error) — orderly for a client hanging up.
    Closed,
    /// The stop flag was raised mid-read.
    Stopped,
}

/// Reads one length-prefixed frame, polling `stop` between read timeouts
/// (the stream must have a read timeout configured). Frames longer than
/// `max_bytes` read as [`FrameRead::Closed`] (protocol error).
pub fn read_frame_from(s: &mut TcpStream, max_bytes: usize, stop: &AtomicBool) -> FrameRead {
    read_frame_bounded(s, max_bytes, stop, None)
}

/// [`read_frame_from`] with an absolute deadline: once it passes, the read
/// gives up and reports [`FrameRead::Closed`] even though the connection
/// may still be alive. For one-shot RPC-style exchanges (e.g. the shutdown
/// RPC's acknowledgement) where a wedged peer must not hang the caller.
pub fn read_frame_deadline(
    s: &mut TcpStream,
    max_bytes: usize,
    stop: &AtomicBool,
    deadline: Instant,
) -> FrameRead {
    read_frame_bounded(s, max_bytes, stop, Some(deadline))
}

fn read_frame_bounded(
    s: &mut TcpStream,
    max_bytes: usize,
    stop: &AtomicBool,
    deadline: Option<Instant>,
) -> FrameRead {
    let mut len_buf = [0u8; 4];
    match read_exact_polled(s, &mut len_buf, stop, deadline) {
        ReadOutcome::Filled => {}
        ReadOutcome::Closed => return FrameRead::Closed,
        ReadOutcome::Stopped => return FrameRead::Stopped,
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_bytes {
        return FrameRead::Closed;
    }
    let mut payload = vec![0u8; len];
    match read_exact_polled(s, &mut payload, stop, deadline) {
        ReadOutcome::Filled => FrameRead::Frame(payload),
        ReadOutcome::Closed => FrameRead::Closed,
        ReadOutcome::Stopped => FrameRead::Stopped,
    }
}

/// Dials `addr` and performs the identifying handshake.
fn dial(me: NodeId, addr: SocketAddr, cfg: TcpConfig) -> std::io::Result<TcpStream> {
    let mut s = TcpStream::connect_timeout(&addr, cfg.poll.max(Duration::from_millis(50)))?;
    s.set_nodelay(true)?;
    s.set_write_timeout(Some(Duration::from_secs(1)))?;
    let mut hello = [0u8; 8];
    hello[..4].copy_from_slice(&MAGIC);
    hello[4..].copy_from_slice(&me.0.to_le_bytes());
    s.write_all(&hello)?;
    Ok(s)
}

/// Writes one length-prefixed frame.
fn write_frame(s: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    // One buffer, one write: avoids a small-prefix packet even if the
    // kernel decides to flush between writes.
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    s.write_all(&buf)
}

/// Joins (and forgets) every finished handle in `handles`, keeping the
/// live ones. Accept loops — this transport's and the client-port
/// service's in `hermes-replica` — call this each iteration so a
/// long-lived node with connection churn does not accumulate handles
/// without bound.
pub fn reap_finished(handles: &mut Vec<JoinHandle<()>>) {
    let mut i = 0;
    while i < handles.len() {
        if handles[i].is_finished() {
            let _ = handles.swap_remove(i).join();
        } else {
            i += 1;
        }
    }
}

/// Accept loop: hands each inbound connection to its own reader thread;
/// reaps finished readers as it goes and joins the rest before exiting so
/// shutdown is clean.
fn accept_main(
    listener: TcpListener,
    sink: IngressSink,
    stats: Arc<TcpStats>,
    stop: Arc<AtomicBool>,
    cfg: TcpConfig,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        reap_finished(&mut readers);
        match listener.accept() {
            Ok((stream, _)) => {
                TcpStats::bump(&stats.accepts);
                let sink = Arc::clone(&sink);
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                readers.push(std::thread::spawn(move || {
                    reader_main(stream, sink, stats, stop, cfg);
                }));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(cfg.poll.min(Duration::from_millis(5)));
            }
            Err(_) => std::thread::sleep(cfg.poll),
        }
    }
    for r in readers {
        let _ = r.join();
    }
}

/// Outcome of a polled exact-length read.
enum ReadOutcome {
    /// The buffer was filled.
    Filled,
    /// Orderly or errored end of stream.
    Closed,
    /// Shutdown was requested mid-read.
    Stopped,
}

/// `read_exact` that polls the stop flag between read timeouts, tolerating
/// partial reads across poll windows. An optional `deadline` bounds the
/// whole read (expiry reads as the stream closing).
fn read_exact_polled(
    s: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
    deadline: Option<Instant>,
) -> ReadOutcome {
    let mut at = 0usize;
    while at < buf.len() {
        if stop.load(Ordering::Relaxed) {
            return ReadOutcome::Stopped;
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return ReadOutcome::Closed;
        }
        match s.read(&mut buf[at..]) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => at += n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Closed,
        }
    }
    ReadOutcome::Filled
}

/// A connection that has not completed its 8-byte handshake within this
/// long is not a peer; drop it rather than pin a reader thread forever.
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(5);

/// Per-connection reader: handshake, then frames into the sink until the
/// connection dies — at which point the disconnect is surfaced as
/// [`NetEvent::PeerDown`].
fn reader_main(
    mut stream: TcpStream,
    sink: IngressSink,
    stats: Arc<TcpStats>,
    stop: Arc<AtomicBool>,
    cfg: TcpConfig,
) {
    if stream.set_read_timeout(Some(cfg.poll)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let mut hello = [0u8; 8];
    let hello_by = Some(Instant::now() + HANDSHAKE_DEADLINE);
    if !matches!(
        read_exact_polled(&mut stream, &mut hello, &stop, hello_by),
        ReadOutcome::Filled
    ) || hello[..4] != MAGIC
    {
        return; // Not one of ours; drop without surfacing a peer event.
    }
    let peer = NodeId(u32::from_le_bytes(hello[4..].try_into().expect("sized")));
    if !sink(NetEvent::PeerUp(peer)) {
        return;
    }
    loop {
        match read_frame_from(&mut stream, cfg.max_frame_bytes, &stop) {
            FrameRead::Frame(payload) => {
                TcpStats::bump(&stats.frames_received);
                TcpStats::add(&stats.bytes_received, payload.len() as u64);
                if !sink(NetEvent::Frame(peer, Bytes::from(payload))) {
                    return;
                }
            }
            FrameRead::Closed => break,
            FrameRead::Stopped => return,
        }
    }
    TcpStats::bump(&stats.disconnects);
    let _ = sink(NetEvent::PeerDown(peer));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded as chan;

    /// Starts `ep` with a sink forwarding into a channel.
    fn start_collecting(ep: TcpEndpoint) -> (IngressGuard, Receiver<NetEvent>) {
        let (tx, rx) = chan();
        let guard = ep.start(Arc::new(move |ev| tx.send(ev).is_ok()));
        (guard, rx)
    }

    fn recv_frame(rx: &Receiver<NetEvent>) -> (NodeId, Bytes) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(NetEvent::Frame(from, b)) => return (from, b),
                Ok(_) => continue,
                Err(_) => continue,
            }
        }
        panic!("no frame within deadline");
    }

    #[test]
    fn loopback_pair_exchanges_frames() {
        let mut eps = TcpNet::loopback(2).unwrap().into_endpoints();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let a_tx = a.sender();
        let b_tx = b.sender();
        let (ga, ra) = start_collecting(a);
        let (gb, rb) = start_collecting(b);
        a_tx.send(NodeId(1), Bytes::from_static(b"ping"));
        let (from, data) = recv_frame(&rb);
        assert_eq!((from, &data[..]), (NodeId(0), &b"ping"[..]));
        b_tx.send(NodeId(0), Bytes::from_static(b"pong"));
        let (from, data) = recv_frame(&ra);
        assert_eq!((from, &data[..]), (NodeId(1), &b"pong"[..]));
        assert!(a_tx.stats().frames_sent() >= 1);
        assert!(b_tx.stats().frames_received() >= 1);
        ga.stop();
        gb.stop();
    }

    #[test]
    fn many_frames_preserve_content_and_order_per_peer() {
        let mut eps = TcpNet::loopback(2).unwrap().into_endpoints();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let a_tx = a.sender();
        let (_ga, _ra) = start_collecting(a);
        let (gb, rb) = start_collecting(b);
        for i in 0..500u32 {
            a_tx.send(NodeId(1), Bytes::from(i.to_le_bytes().to_vec()));
        }
        for i in 0..500u32 {
            let (_, data) = recv_frame(&rb);
            assert_eq!(data[..], i.to_le_bytes(), "frame {i} out of order");
        }
        gb.stop();
    }

    #[test]
    fn killed_connection_surfaces_peer_down_then_reconnects() {
        let mut eps = TcpNet::loopback(2).unwrap().into_endpoints();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let a_tx = a.sender();
        let b_stats = b.stats();
        let (_ga, _ra) = start_collecting(a);
        let (gb, rb) = start_collecting(b);

        a_tx.send(NodeId(1), Bytes::from_static(b"one"));
        let _ = recv_frame(&rb);

        // Kill the live 0→1 connection; node 1's reader must surface it.
        a_tx.kill_connection(NodeId(1));
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut saw_down = false;
        while Instant::now() < deadline && !saw_down {
            if let Ok(NetEvent::PeerDown(p)) = rb.recv_timeout(Duration::from_millis(100)) {
                assert_eq!(p, NodeId(0));
                saw_down = true;
            }
        }
        assert!(saw_down, "reader did not surface the disconnect");
        // The writer bumps its counter just after the shutdown syscall the
        // peer observed; poll briefly instead of racing it.
        let deadline = Instant::now() + Duration::from_secs(2);
        while a_tx.stats().disconnects() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(a_tx.stats().disconnects() >= 1, "writer side counted too");

        // Reconnect: the next sends dial a fresh connection and deliver.
        // (Early retries may race the backoff window and drop; keep trying.)
        let dials_before = a_tx.stats().dials();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut redelivered = false;
        while Instant::now() < deadline && !redelivered {
            a_tx.send(NodeId(1), Bytes::from_static(b"two"));
            if let Ok(NetEvent::Frame(_, data)) = rb.recv_timeout(Duration::from_millis(100)) {
                assert_eq!(&data[..], b"two");
                redelivered = true;
            }
        }
        assert!(redelivered, "no delivery after reconnect");
        assert!(a_tx.stats().dials() > dials_before, "reconnect happened");
        assert!(b_stats.disconnects() >= 1);
        gb.stop();
    }

    #[test]
    fn frames_to_unreachable_peer_are_dropped_not_queued_forever() {
        // Peer table points node 1 at a port nobody listens on.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let me_addr = listener.local_addr().unwrap();
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let ep =
            TcpEndpoint::from_listener(NodeId(0), listener, &[me_addr, dead], TcpConfig::default())
                .unwrap();
        let tx = ep.sender();
        let (guard, _rx) = start_collecting(ep);
        for _ in 0..50 {
            tx.send(NodeId(1), Bytes::from_static(b"void"));
            std::thread::sleep(Duration::from_millis(1));
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while tx.stats().frames_dropped() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(tx.stats().frames_dropped() > 0);
        assert_eq!(tx.stats().frames_sent(), 0);
        guard.stop();
    }

    #[test]
    fn non_protocol_connection_is_ignored() {
        let mut eps = TcpNet::loopback(1).unwrap().into_endpoints();
        let a = eps.pop().unwrap();
        let addr = a.local_addr().unwrap();
        let (guard, rx) = start_collecting(a);
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        drop(s);
        // No Frame/PeerUp/PeerDown may surface from a garbage handshake.
        assert!(rx.recv_timeout(Duration::from_millis(300)).is_err());
        guard.stop();
    }

    #[test]
    fn self_and_out_of_range_sends_drop_silently() {
        let mut eps = TcpNet::loopback(1).unwrap().into_endpoints();
        let a = eps.pop().unwrap();
        let tx = a.sender();
        tx.send(NodeId(0), Bytes::from_static(b"me"));
        tx.send(NodeId(9), Bytes::from_static(b"nowhere"));
        assert_eq!(tx.stats().frames_dropped(), 2);
        assert_eq!(tx.cluster_size(), 1);
    }
}
