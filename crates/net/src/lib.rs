//! Network substrates for the Hermes reproduction.
//!
//! The paper runs over RDMA UD (unreliable datagrams): messages may be
//! dropped, duplicated and reordered, and the protocol is explicitly designed
//! to tolerate all three (paper §3.4). This crate provides two stand-ins that
//! preserve exactly that service model (see DESIGN.md §1):
//!
//! * [`SimNet`] — a deterministic *policy object* for discrete-event
//!   simulations: given a send, it decides delivery times (latency + jitter +
//!   per-NIC bandwidth serialization), drops, duplicates and partitions, all
//!   from a seeded RNG so that runs reproduce exactly.
//! * [`InProcNet`] — a real multi-threaded transport over crossbeam channels
//!   for in-process clusters (used by examples and integration tests), with
//!   optional probabilistic fault injection.
//! * [`TcpNet`] / [`TcpEndpoint`] — length-prefixed Wings frames over real
//!   `std::net` TCP sockets, with per-peer writer threads, per-connection
//!   reader threads and automatic reconnect-with-backoff: the transport
//!   that runs a replica group as separate OS processes (DESIGN.md §4).
//!
//! The in-process and TCP transports implement the pluggable
//! [`Transport`]/[`Endpoint`] trait pair, so cluster runtimes are written
//! once and deployed over either. Ingress is push-based ([`NetEvent`]s into
//! an [`IngressSink`]), which is what gives runtimes event-driven wakeup.
//!
//! The crate also provides the readiness substrate of the sharded-poller
//! client plane (DESIGN.md §7): a [`Poller`] multiplexes thousands of
//! non-blocking sockets per thread (epoll on Linux, `poll(2)` elsewhere),
//! and a [`Waker`] lets worker threads interrupt a blocked wait.
//!
//! # Examples
//!
//! ```
//! use hermes_common::NodeId;
//! use hermes_net::{DeliveryOutcome, SimNet, SimNetConfig};
//! use hermes_sim::SimTime;
//!
//! let mut net = SimNet::new(5, SimNetConfig::default(), 42);
//! match net.plan_delivery(NodeId(0), NodeId(1), 64, SimTime::ZERO) {
//!     DeliveryOutcome::Deliver(at) => assert!(at > SimTime::ZERO),
//!     other => panic!("lossless default config must deliver: {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod inproc;
mod poll;
mod simnet;
mod tcp;
mod transport;

pub use inproc::{InProcEndpoint, InProcNet, InProcSender, NetFaults};
pub use poll::{Interest, PollEvent, Poller, Waker};
pub use simnet::{DeliveryOutcome, SimNet, SimNetConfig};
pub use tcp::{
    read_frame_deadline, read_frame_from, reap_finished, write_frame_to, FrameRead, TcpConfig,
    TcpEndpoint, TcpNet, TcpSender, TcpStats,
};
pub use transport::{Endpoint, IngressGuard, IngressSink, NetEvent, NetSender, Transport};
