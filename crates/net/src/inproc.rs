use crate::transport::{Endpoint, IngressGuard, IngressSink, NetEvent, NetSender, Transport};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use hermes_common::NodeId;
use hermes_sim::rng::Rng;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often the in-process delivery thread rechecks its stop flag while
/// its queue is idle.
const FORWARD_POLL: Duration = Duration::from_millis(25);

/// Probabilistic fault injection applied to an [`InProcNet`].
///
/// Mirrors the unreliable-datagram semantics the protocol must tolerate
/// (paper §3.4): loss and duplication; reordering arises naturally from
/// thread scheduling.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetFaults {
    /// Probability that a datagram is silently dropped.
    pub drop_prob: f64,
    /// Probability that a datagram is delivered twice.
    pub duplicate_prob: f64,
}

struct Shared {
    faults: Mutex<(NetFaults, Rng)>,
    /// Per-node kill switch: a "crashed" endpoint stops delivering.
    crashed: Vec<AtomicBool>,
}

/// A datagram in flight: originating node plus payload.
type Datagram = (NodeId, Bytes);

/// A real in-process datagram network over crossbeam channels.
///
/// Each node gets an [`InProcEndpoint`] that can be moved to its own thread.
/// Sends are non-blocking and unordered across senders; faults can be
/// injected at runtime. This is the transport behind the threaded cluster
/// runtime (examples and integration tests run real concurrency through it).
///
/// # Examples
///
/// ```
/// use hermes_common::NodeId;
/// use hermes_net::InProcNet;
///
/// let mut endpoints = InProcNet::new(2).into_endpoints();
/// let b = endpoints.pop().unwrap();
/// let a = endpoints.pop().unwrap();
/// a.send(NodeId(1), bytes::Bytes::from_static(b"ping"));
/// let (from, data) = b.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
/// assert_eq!(from, NodeId(0));
/// assert_eq!(&data[..], b"ping");
/// ```
#[derive(Debug)]
pub struct InProcNet {
    endpoints: Vec<InProcEndpoint>,
}

impl InProcNet {
    /// Creates a fully connected network of `n` endpoints (no faults).
    pub fn new(n: usize) -> Self {
        Self::with_faults(n, NetFaults::default(), 0)
    }

    /// Creates a network with fault injection driven by `seed`.
    pub fn with_faults(n: usize, faults: NetFaults, seed: u64) -> Self {
        let shared = Arc::new(Shared {
            faults: Mutex::new((faults, Rng::seeded(seed))),
            crashed: (0..n).map(|_| AtomicBool::new(false)).collect(),
        });
        let channels: Vec<(Sender<Datagram>, Receiver<Datagram>)> =
            (0..n).map(|_| unbounded()).collect();
        let senders: Vec<Sender<Datagram>> = channels.iter().map(|(s, _)| s.clone()).collect();
        let endpoints = channels
            .into_iter()
            .enumerate()
            .map(|(i, (_, rx))| InProcEndpoint {
                tx: InProcSender {
                    me: NodeId(i as u32),
                    senders: senders.clone(),
                    shared: Arc::clone(&shared),
                },
                rx,
            })
            .collect();
        InProcNet { endpoints }
    }

    /// Extracts the endpoints, one per node, to hand to node threads.
    pub fn into_endpoints(self) -> Vec<InProcEndpoint> {
        self.endpoints
    }
}

impl Transport for InProcNet {
    type Endpoint = InProcEndpoint;

    fn into_endpoints(self) -> Vec<InProcEndpoint> {
        self.endpoints
    }
}

/// The transmit half of a node's network attachment.
///
/// Cloneable and shareable: on a multi-worker replica every worker thread
/// holds a clone and sends its Wings frames directly — the shared sender
/// *is* the node's merged egress — while one thread keeps the receive half
/// ([`InProcEndpoint`]) and demuxes ingress.
#[derive(Clone)]
pub struct InProcSender {
    me: NodeId,
    senders: Vec<Sender<Datagram>>,
    shared: Arc<Shared>,
}

impl InProcSender {
    /// This sender's node id.
    pub fn node_id(&self) -> NodeId {
        self.me
    }

    /// Number of nodes on the network.
    pub fn cluster_size(&self) -> usize {
        self.senders.len()
    }

    /// Sends a datagram to `to`. Never blocks; silently drops if the
    /// destination is out of range, crashed, or the fault injector says so.
    pub fn send(&self, to: NodeId, payload: Bytes) {
        if to.index() >= self.senders.len() {
            return;
        }
        if self.is_crashed(self.me) || self.is_crashed(to) {
            return;
        }
        let duplicate = {
            let mut guard = self.shared.faults.lock();
            let (faults, rng) = &mut *guard;
            if rng.gen_bool(faults.drop_prob) {
                return;
            }
            rng.gen_bool(faults.duplicate_prob)
        };
        let _ = self.senders[to.index()].send((self.me, payload.clone()));
        if duplicate {
            let _ = self.senders[to.index()].send((self.me, payload));
        }
    }

    /// Sends `payload` to every node except self (software broadcast — the
    /// Wings model of a series of unicasts, paper §4.2).
    pub fn broadcast(&self, payload: &Bytes) {
        for i in 0..self.senders.len() {
            let to = NodeId(i as u32);
            if to != self.me {
                self.send(to, payload.clone());
            }
        }
    }

    /// Reconfigures fault injection for the whole network.
    pub fn set_faults(&self, faults: NetFaults) {
        self.shared.faults.lock().0 = faults;
    }

    /// Crash-stops `node` network-wide (both directions go silent).
    pub fn crash(&self, node: NodeId) {
        if node.index() < self.shared.crashed.len() {
            self.shared.crashed[node.index()].store(true, Ordering::SeqCst);
        }
    }

    fn is_crashed(&self, node: NodeId) -> bool {
        self.shared.crashed[node.index()].load(Ordering::SeqCst)
    }
}

impl NetSender for InProcSender {
    fn node_id(&self) -> NodeId {
        self.me
    }

    fn send(&self, to: NodeId, payload: Bytes) {
        InProcSender::send(self, to, payload);
    }
}

impl std::fmt::Debug for InProcSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcSender")
            .field("me", &self.me)
            .field("cluster_size", &self.senders.len())
            .finish()
    }
}

/// One node's attachment to an [`InProcNet`]: the receive half plus an
/// embedded [`InProcSender`].
pub struct InProcEndpoint {
    tx: InProcSender,
    rx: Receiver<Datagram>,
}

impl InProcEndpoint {
    /// This endpoint's node id.
    pub fn node_id(&self) -> NodeId {
        self.tx.me
    }

    /// Number of nodes on the network.
    pub fn cluster_size(&self) -> usize {
        self.tx.cluster_size()
    }

    /// A cloneable transmit handle for this node (hand one to each worker
    /// thread of a multi-worker replica).
    pub fn sender(&self) -> InProcSender {
        self.tx.clone()
    }

    /// Sends a datagram to `to`. Never blocks; silently drops if the
    /// destination is out of range, crashed, or the fault injector says so.
    pub fn send(&self, to: NodeId, payload: Bytes) {
        self.tx.send(to, payload);
    }

    /// Sends `payload` to every node except self (software broadcast — the
    /// Wings model of a series of unicasts, paper §4.2).
    pub fn broadcast(&self, payload: &Bytes) {
        self.tx.broadcast(payload);
    }

    /// Receives the next datagram, blocking up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<(NodeId, Bytes)> {
        match self.rx.recv_timeout(timeout) {
            Ok(msg) if !self.tx.is_crashed(self.tx.me) => Some(msg),
            _ => None,
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<(NodeId, Bytes)> {
        if self.tx.is_crashed(self.tx.me) {
            // Drain without delivering: a crashed node is silent.
            while self.rx.try_recv().is_ok() {}
            return None;
        }
        self.rx.try_recv().ok()
    }

    /// Reconfigures fault injection for the whole network.
    pub fn set_faults(&self, faults: NetFaults) {
        self.tx.set_faults(faults);
    }

    /// Crash-stops `node` network-wide (both directions go silent).
    pub fn crash(&self, node: NodeId) {
        self.tx.crash(node);
    }
}

impl Endpoint for InProcEndpoint {
    type Sender = InProcSender;

    fn node_id(&self) -> NodeId {
        self.tx.me
    }

    fn sender(&self) -> InProcSender {
        self.tx.clone()
    }

    /// Spawns one delivery thread that moves datagrams from the endpoint's
    /// channel into `sink` as [`NetEvent::Frame`]s. In-process links never
    /// drop, so no peer up/down events are ever emitted.
    fn start(self, sink: IngressSink) -> IngressGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !thread_stop.load(Ordering::Relaxed) {
                match self.rx.recv_timeout(FORWARD_POLL) {
                    Ok((from, payload)) => {
                        // A crashed node is silent: drain without delivering.
                        if self.tx.is_crashed(self.tx.me) {
                            continue;
                        }
                        if !sink(NetEvent::Frame(from, payload)) {
                            return;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => return,
                }
            }
        });
        IngressGuard::new(stop, vec![handle])
    }
}

impl std::fmt::Debug for InProcEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcEndpoint")
            .field("me", &self.tx.me)
            .field("cluster_size", &self.tx.cluster_size())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn point_to_point_delivery() {
        let mut eps = InProcNet::new(3).into_endpoints();
        let c = eps.pop().unwrap();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        a.send(NodeId(1), Bytes::from_static(b"to-b"));
        a.send(NodeId(2), Bytes::from_static(b"to-c"));
        assert_eq!(
            b.recv_timeout(Duration::from_secs(1)),
            Some((NodeId(0), Bytes::from_static(b"to-b")))
        );
        assert_eq!(
            c.recv_timeout(Duration::from_secs(1)),
            Some((NodeId(0), Bytes::from_static(b"to-c")))
        );
        assert_eq!(b.try_recv(), None);
    }

    #[test]
    fn broadcast_reaches_all_but_self() {
        let eps = InProcNet::new(4).into_endpoints();
        eps[1].broadcast(&Bytes::from_static(b"hi"));
        for (i, ep) in eps.iter().enumerate() {
            if i == 1 {
                assert_eq!(ep.try_recv(), None);
            } else {
                assert_eq!(
                    ep.recv_timeout(Duration::from_secs(1)),
                    Some((NodeId(1), Bytes::from_static(b"hi")))
                );
            }
        }
    }

    #[test]
    fn cross_thread_traffic() {
        let mut eps = InProcNet::new(2).into_endpoints();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let handle = thread::spawn(move || {
            let mut got = 0;
            while got < 100 {
                if b.recv_timeout(Duration::from_secs(5)).is_some() {
                    got += 1;
                }
            }
            got
        });
        for i in 0..100u32 {
            a.send(NodeId(1), Bytes::from(i.to_le_bytes().to_vec()));
        }
        assert_eq!(handle.join().unwrap(), 100);
    }

    #[test]
    fn drop_faults_lose_messages() {
        let eps = InProcNet::with_faults(
            2,
            NetFaults {
                drop_prob: 1.0,
                duplicate_prob: 0.0,
            },
            1,
        )
        .into_endpoints();
        eps[0].send(NodeId(1), Bytes::from_static(b"x"));
        assert_eq!(eps[1].recv_timeout(Duration::from_millis(50)), None);
        // Heal and verify traffic resumes.
        eps[0].set_faults(NetFaults::default());
        eps[0].send(NodeId(1), Bytes::from_static(b"y"));
        assert!(eps[1].recv_timeout(Duration::from_secs(1)).is_some());
    }

    #[test]
    fn duplicate_faults_deliver_twice() {
        let eps = InProcNet::with_faults(
            2,
            NetFaults {
                drop_prob: 0.0,
                duplicate_prob: 1.0,
            },
            1,
        )
        .into_endpoints();
        eps[0].send(NodeId(1), Bytes::from_static(b"x"));
        assert!(eps[1].recv_timeout(Duration::from_secs(1)).is_some());
        assert!(eps[1].recv_timeout(Duration::from_secs(1)).is_some());
        assert_eq!(eps[1].try_recv(), None);
    }

    #[test]
    fn crashed_node_goes_silent_both_ways() {
        let eps = InProcNet::new(3).into_endpoints();
        eps[0].crash(NodeId(1));
        eps[0].send(NodeId(1), Bytes::from_static(b"dead"));
        assert_eq!(eps[1].recv_timeout(Duration::from_millis(50)), None);
        eps[1].send(NodeId(0), Bytes::from_static(b"from-dead"));
        assert_eq!(eps[0].recv_timeout(Duration::from_millis(50)), None);
        // Unrelated traffic still flows.
        eps[0].send(NodeId(2), Bytes::from_static(b"alive"));
        assert!(eps[2].recv_timeout(Duration::from_secs(1)).is_some());
    }

    #[test]
    fn cloned_senders_share_one_node_identity() {
        let mut eps = InProcNet::new(2).into_endpoints();
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        // Two "worker threads" of node 0 egress through clones concurrently.
        let workers: Vec<_> = (0..2)
            .map(|w| {
                let tx = a.sender();
                thread::spawn(move || {
                    assert_eq!(tx.node_id(), NodeId(0));
                    for _ in 0..50 {
                        tx.send(NodeId(1), Bytes::from(vec![w as u8]));
                    }
                })
            })
            .collect();
        for h in workers {
            h.join().unwrap();
        }
        let mut got = 0;
        while b.recv_timeout(Duration::from_secs(1)).is_some() {
            got += 1;
            if got == 100 {
                break;
            }
        }
        assert_eq!(got, 100);
    }

    #[test]
    fn out_of_range_destination_is_ignored() {
        let eps = InProcNet::new(2).into_endpoints();
        eps[0].send(NodeId(9), Bytes::from_static(b"nowhere")); // no panic
        assert_eq!(eps[0].cluster_size(), 2);
        assert_eq!(eps[1].node_id(), NodeId(1));
    }
}
