//! # hermes-obs — the observability substrate
//!
//! Hermes' headline claim is *tail latency*, so this reproduction's
//! measurement layer is load-bearing (DESIGN.md §9). This crate is that
//! layer, with zero external dependencies:
//!
//! * [`hist`] — lock-free log2-bucketed latency [`Histogram`]s with
//!   mergeable [`HistogramSnapshot`]s and one shared percentile
//!   implementation (p50/p90/p99/p999) for every bench and the metrics
//!   exposition;
//! * [`registry`] — a [`Registry`] of named counters/gauges/histograms
//!   rendering Prometheus text exposition (served by the daemon's
//!   `Request::Metrics` RPC);
//! * [`trace`] — per-lane protocol-phase [`Span`]s and [`TraceRing`]s
//!   with slow-op capture (any op over `HERMES_SLOW_OP_US` dumps its full
//!   phase breakdown; `HERMES_SLOW_OP_US=0` is the intended
//!   capture-everything mode — the warn log is rate-limited per ring, the
//!   ring itself keeps every capture) and sampled cross-node trace ids
//!   ([`TraceId`], `HERMES_TRACE_SAMPLE`);
//! * [`aggregate`] — cluster-side merging of per-node scrapes and
//!   stitching of trace spans into causal cross-node [`Timeline`]s;
//! * [`log`] — the `HERMES_LOG` leveled logger ([`obs_error!`] …
//!   [`obs_trace!`]) with an in-memory capture sink for tests.
//!
//! Recording can be disabled process-wide (`HERMES_OBS=off` or
//! [`set_recording`]) to measure its own overhead; the acceptance bar is
//! ≤ 5 % ops/s against the disabled baseline.

#![warn(missing_docs)]

pub mod aggregate;
pub mod hist;
pub mod log;
pub mod registry;
pub mod trace;

pub use aggregate::{merge_expositions, stitch, Timeline, TimelineEvent};
pub use hist::{Histogram, HistogramSnapshot, Quantiles};
pub use registry::{sample_value, validate_exposition, Counter, Gauge, Registry};
pub use trace::{
    maybe_trace, set_trace_sample, trace_sampling_on, Phase, SlowOp, Span, TraceId, TraceRing,
    TraceSpan,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static RECORDING: OnceLock<AtomicBool> = OnceLock::new();

fn recording_cell() -> &'static AtomicBool {
    RECORDING.get_or_init(|| {
        let on = !matches!(
            std::env::var("HERMES_OBS")
                .unwrap_or_default()
                .trim()
                .to_ascii_lowercase()
                .as_str(),
            "off" | "0" | "false"
        );
        AtomicBool::new(on)
    })
}

/// Whether hot-path metric/trace recording is enabled (default yes;
/// `HERMES_OBS=off` disables). Instrumented code checks this once per
/// operation and skips all span/histogram work when off.
#[inline]
pub fn recording_enabled() -> bool {
    recording_cell().load(Ordering::Relaxed)
}

/// Enables or disables hot-path recording at runtime (overrides the
/// environment).
pub fn set_recording(on: bool) {
    recording_cell().store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    #[test]
    fn recording_toggle() {
        let initial = super::recording_enabled();
        super::set_recording(false);
        assert!(!super::recording_enabled());
        super::set_recording(true);
        assert!(super::recording_enabled());
        super::set_recording(initial);
    }
}
