//! Lock-free log2-bucketed latency histograms with mergeable snapshots.
//!
//! The same HdrHistogram-style layout the simulator's measurement
//! containers use (32 linear sub-buckets per power of two, ~3 % bounded
//! relative error over the full `u64` range), but with atomic buckets so
//! one histogram can be recorded into from a hot worker lane while another
//! thread snapshots it for exposition. Recording is three relaxed atomic
//! RMWs plus two min/max updates — cheap enough for per-op use.
//!
//! [`HistogramSnapshot`] is the frozen view: plain `u64` buckets that can
//! be merged across lanes and queried for percentiles. All percentile
//! math lives on the snapshot so every consumer (benches, the metrics
//! exposition, the simulator) derives p50/p90/p99/p999 from one
//! implementation instead of three hand-rolled sorts.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of linear sub-buckets per power-of-two bucket.
pub const SUB_BUCKETS: u64 = 32;
const SUB_BUCKET_BITS: u32 = 5; // log2(SUB_BUCKETS)
/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = (64 - SUB_BUCKET_BITS as usize + 1) * SUB_BUCKETS as usize;

/// Maps a sample to its bucket index.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    // Highest set bit determines the power-of-two bucket; the next
    // SUB_BUCKET_BITS bits select the linear sub-bucket within it.
    let msb = 63 - value.leading_zeros();
    let bucket = (msb - SUB_BUCKET_BITS + 1) as usize;
    let sub = ((value >> (msb - SUB_BUCKET_BITS)) - SUB_BUCKETS) as usize;
    SUB_BUCKETS as usize + (bucket - 1) * SUB_BUCKETS as usize + sub
}

/// Representative (midpoint) value of a bucket.
#[inline]
pub fn bucket_value(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let bucket = (index - SUB_BUCKETS) / SUB_BUCKETS + 1;
    let sub = (index - SUB_BUCKETS) % SUB_BUCKETS;
    // Midpoint of the bucket range for low bias.
    let base = (SUB_BUCKETS + sub) << (bucket - 1);
    let width = 1u64 << (bucket - 1);
    base + width / 2
}

/// A concurrently-recordable log-bucketed histogram of `u64` samples
/// (typically latencies in microseconds).
#[derive(Debug)]
pub struct Histogram {
    counts: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Safe to call from many threads at once; the
    /// orderings are relaxed because snapshots only need eventual
    /// consistency, not a linearization point.
    #[inline]
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freezes the current contents into a plain (mergeable, queryable)
    /// snapshot. Concurrent recorders may land between bucket reads; the
    /// snapshot normalizes `count` to the bucket total so percentiles stay
    /// internally consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed) as u128,
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Adds every sample of `other`'s current contents into `self`.
    pub fn merge_from(&self, other: &Histogram) {
        self.merge_snapshot(&other.snapshot());
    }

    /// Adds a frozen snapshot's samples into `self`.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        for (dst, &src) in self.counts.iter().zip(&snap.counts) {
            if src > 0 {
                dst.fetch_add(src, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum as u64, Ordering::Relaxed);
        if snap.count > 0 {
            self.min.fetch_min(snap.min, Ordering::Relaxed);
            self.max.fetch_max(snap.max, Ordering::Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A frozen, mergeable view of a [`Histogram`]'s contents.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (useful as a merge accumulator).
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample into the (plain, single-threaded) snapshot —
    /// lets benches reuse the exact same bucket/percentile math without
    /// paying for atomics.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at the given percentile (0–100), with the histogram's
    /// bucket-granularity error. Returns 0 for an empty snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merges another snapshot's samples into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// The standard benchmark quantile set, in one call.
    pub fn quantiles(&self) -> Quantiles {
        Quantiles {
            count: self.count(),
            min: self.min(),
            mean: self.mean(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            p999: self.percentile(99.9),
            max: self.max(),
        }
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

/// The quantile set every bench record carries (`BENCH_*.json`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quantiles {
    /// Number of samples.
    pub count: u64,
    /// Minimum sample.
    pub min: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Maximum sample.
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_reports_zeros() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(50.0), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), SUB_BUCKETS - 1);
        assert_eq!(s.percentile(50.0), 15);
    }

    #[test]
    fn percentiles_have_bounded_relative_error() {
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        for (p, expected) in [
            (50.0, 50_000.0),
            (90.0, 90_000.0),
            (99.0, 99_000.0),
            (99.9, 99_900.0),
        ] {
            let got = s.percentile(p) as f64;
            let rel = (got - expected).abs() / expected;
            assert!(rel < 0.05, "p{p}: got {got}, expected {expected}");
        }
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX / 2);
        let s = h.snapshot();
        assert_eq!(s.count(), 3);
        assert_eq!(s.max(), u64::MAX);
        assert!(s.percentile(100.0) >= u64::MAX / 2);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }

    #[test]
    fn merge_combines_populations() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=500u64 {
            a.record(v);
        }
        for v in 501..=1000u64 {
            b.record(v);
        }
        a.merge_from(&b);
        let s = a.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.min(), 1);
        assert_eq!(s.max(), 1000);
        let p50 = s.percentile(50.0) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.06, "p50 {p50}");
    }

    #[test]
    fn snapshot_merge_matches_direct_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3u64, 77, 1_000_000, 42] {
            a.record(v);
            all.record(v);
        }
        for v in [9u64, 500_000] {
            b.record(v);
            all.record(v);
        }
        let mut acc = a.snapshot();
        acc.merge(&b.snapshot());
        assert_eq!(acc, all.snapshot());
    }

    #[test]
    fn plain_snapshot_recording_matches_atomic() {
        let h = Histogram::new();
        let mut s = HistogramSnapshot::empty();
        for v in [0u64, 5, 31, 32, 33, 1000, 123_456_789] {
            h.record(v);
            s.record(v);
        }
        assert_eq!(h.snapshot(), s);
    }

    #[test]
    fn quantiles_are_ordered() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let q = h.snapshot().quantiles();
        assert!(q.min <= q.p50 && q.p50 <= q.p90);
        assert!(q.p90 <= q.p99 && q.p99 <= q.p999 && q.p999 <= q.max);
        assert_eq!(q.count, 10_000);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_out_of_range_panics() {
        HistogramSnapshot::empty().percentile(101.0);
    }

    #[test]
    fn index_value_roundtrip_monotonicity() {
        let mut samples: Vec<u64> = Vec::new();
        for shift in 0..60 {
            for off in [0u64, 1, 3] {
                samples.push((1u64 << shift) + off);
            }
        }
        samples.sort_unstable();
        let mut last_idx = 0;
        for v in samples {
            let idx = bucket_index(v);
            assert!(idx >= last_idx, "index not monotonic at {v}");
            last_idx = idx;
            let back = bucket_value(idx);
            let rel = (back as f64 - v as f64).abs() / v as f64;
            assert!(rel < 0.06, "roundtrip error at {v}: back {back}");
        }
    }
}
