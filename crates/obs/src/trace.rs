//! Per-lane structured protocol-phase tracing with slow-op capture.
//!
//! Every in-flight operation can carry a [`Span`]: a start instant plus a
//! small list of `(Phase, offset)` marks recorded as the op moves through
//! the protocol (issued → invalidations broadcast → acks collected →
//! committed → reply released, and the analogous view-change / sync /
//! transaction / cache-push phases). Marking is an `Instant::elapsed`
//! plus a `Vec` push — nothing is formatted on the hot path.
//!
//! When an op completes, [`TraceRing::complete`] checks the span against
//! the ring's slow-op threshold (`HERMES_SLOW_OP_US`, settable per ring).
//! Fast ops are dropped on the floor; a slow op's full phase breakdown is
//! captured into a bounded ring of [`SlowOp`] reports and emitted through
//! the [`crate::log`] logger at `warn`, so "where did the time go" is
//! answerable after the fact without re-running under a profiler.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Cluster-unique identifier for a sampled operation. `0` means
/// *unsampled*: the op carries no trace context, pays no wire bytes and
/// no extra tracing work anywhere.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The unsampled trace id.
    pub const NONE: TraceId = TraceId(0);

    /// Whether this op was sampled for cross-node tracing.
    #[inline]
    pub fn is_sampled(self) -> bool {
        self.0 != 0
    }
}

/// Sampling period cell: every Nth issued op is traced; `0` = tracing
/// off. Initialized once from `HERMES_TRACE_SAMPLE` (a rate in `[0, 1]`).
static TRACE_PERIOD: OnceLock<AtomicU64> = OnceLock::new();
/// Issued-op counter driving deterministic every-Nth sampling.
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);
/// Per-process seed so two daemons minting the same counter values never
/// collide on trace ids.
static TRACE_SEED: OnceLock<u64> = OnceLock::new();

fn trace_period_cell() -> &'static AtomicU64 {
    TRACE_PERIOD.get_or_init(|| {
        let rate: f64 = std::env::var("HERMES_TRACE_SAMPLE")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0.0);
        AtomicU64::new(period_for_rate(rate))
    })
}

fn period_for_rate(rate: f64) -> u64 {
    if rate.is_nan() || rate <= 0.0 {
        0
    } else if rate >= 1.0 {
        1
    } else {
        (1.0 / rate).round() as u64
    }
}

/// Overrides the trace sampling rate at runtime (`0.0` disables, `1.0`
/// samples every op, `0.01` every 100th). Normally set once via the
/// `HERMES_TRACE_SAMPLE` environment variable before startup.
pub fn set_trace_sample(rate: f64) {
    trace_period_cell().store(period_for_rate(rate), Ordering::Relaxed);
}

/// Whether trace sampling is enabled at all (rate > 0).
#[inline]
pub fn trace_sampling_on() -> bool {
    trace_period_cell().load(Ordering::Relaxed) != 0
}

/// Mints a trace id for a newly issued op: [`TraceId::NONE`] unless this
/// op falls on the sampling period. With sampling off this is one relaxed
/// atomic load — the zero-cost guarantee the hot path relies on.
#[inline]
pub fn maybe_trace() -> TraceId {
    let period = trace_period_cell().load(Ordering::Relaxed);
    if period == 0 {
        return TraceId::NONE;
    }
    let n = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
    if !n.is_multiple_of(period) {
        return TraceId::NONE;
    }
    let seed = *TRACE_SEED.get_or_init(|| {
        let clock = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        let stack_entropy = &clock as *const _ as u64;
        clock ^ stack_entropy.rotate_left(32)
    });
    // splitmix64: a full-period mix, so sequential counters spread over
    // the whole id space and `0` (the unsampled sentinel) is dodged below.
    let mut z = n.wrapping_add(seed).wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    TraceId(if z == 0 { 1 } else { z })
}

/// Microseconds since the UNIX epoch — the wall-clock anchor that lets
/// the aggregator order marks from different processes on one axis.
fn unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Protocol phases an operation moves through. One flat namespace across
/// subsystems keeps a single breakdown readable when phases interleave
/// (e.g. a write held behind a cache push during a view change).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Client op arrived at its owning worker lane.
    Issued,
    /// Invalidations broadcast to the replica group.
    InvalBroadcast,
    /// All invalidation acks collected.
    AcksCollected,
    /// Write committed / read validated locally.
    Committed,
    /// Reply ready but held (subscriber invalidation push outstanding).
    ReplyHeld,
    /// Reply released to the client.
    ReplyReleased,
    /// Cache invalidation push sent to a subscribed session.
    CachePush,
    /// Cache push acknowledged by the session.
    CachePushAck,
    /// Held replies released after the last push ack.
    HoldRelease,
    /// View change proposed / detected.
    ViewChangeStart,
    /// New view installed.
    ViewChangeInstalled,
    /// One sync catch-up chunk installed.
    SyncChunkInstall,
    /// Transaction lock phase.
    TxnLock,
    /// Transaction validate phase.
    TxnValidate,
    /// Transaction apply phase.
    TxnApply,
    /// Transaction unlock phase.
    TxnUnlock,
    /// Follower: a traced invalidation arrived off the wire.
    InvIngress,
    /// Follower: a traced validation arrived off the wire.
    ValIngress,
    /// Follower: the message was applied to the local protocol state.
    LocalApply,
    /// Follower: the ack was enqueued into the Wings batcher.
    AckEnqueue,
    /// Follower: the ack batch was flushed into the transport writer.
    AckWrite,
}

impl Phase {
    /// Stable lower-case name (used in logs and dumps).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Issued => "issued",
            Phase::InvalBroadcast => "inval_broadcast",
            Phase::AcksCollected => "acks_collected",
            Phase::Committed => "committed",
            Phase::ReplyHeld => "reply_held",
            Phase::ReplyReleased => "reply_released",
            Phase::CachePush => "cache_push",
            Phase::CachePushAck => "cache_push_ack",
            Phase::HoldRelease => "hold_release",
            Phase::ViewChangeStart => "view_change_start",
            Phase::ViewChangeInstalled => "view_change_installed",
            Phase::SyncChunkInstall => "sync_chunk_install",
            Phase::TxnLock => "txn_lock",
            Phase::TxnValidate => "txn_validate",
            Phase::TxnApply => "txn_apply",
            Phase::TxnUnlock => "txn_unlock",
            Phase::InvIngress => "inv_ingress",
            Phase::ValIngress => "val_ingress",
            Phase::LocalApply => "local_apply",
            Phase::AckEnqueue => "ack_enqueue",
            Phase::AckWrite => "ack_write",
        }
    }
}

/// Inline mark capacity of a [`Span`]. The longest phase chain an op
/// records today is six marks (issued → reply_held → inval_broadcast →
/// acks_collected → committed → reply_released); eight leaves headroom.
/// Marks live inline so starting a span never allocates — it runs on
/// every op whenever recording is enabled, and the heap round-trip was
/// measurable in the threaded closed-loop bench.
const MAX_MARKS: usize = 8;

/// One in-flight operation's phase timeline. Allocation-free: marks are
/// stored inline (capacity [`MAX_MARKS`]; later marks are dropped, which
/// no current phase chain can reach).
#[derive(Clone, Debug)]
pub struct Span {
    start: Instant,
    /// Wall-clock anchor of `start` (0 for untraced spans — only sampled
    /// spans pay the `SystemTime::now` call, and only they need
    /// cross-process alignment).
    start_unix_us: u64,
    trace: TraceId,
    marks: [(Phase, u64); MAX_MARKS],
    len: u8,
}

impl Span {
    /// Starts a span at the current instant with its first phase mark.
    pub fn begin(phase: Phase) -> Self {
        Span::begin_traced(phase, TraceId::NONE)
    }

    /// Starts a span carrying a trace id. Sampled spans also record a
    /// wall-clock anchor so marks from different nodes can be merged onto
    /// one timeline.
    pub fn begin_traced(phase: Phase, trace: TraceId) -> Self {
        Span {
            start: Instant::now(),
            start_unix_us: if trace.is_sampled() { unix_micros() } else { 0 },
            trace,
            marks: [(phase, 0); MAX_MARKS],
            len: 1,
        }
    }

    /// The trace id this span carries ([`TraceId::NONE`] if unsampled).
    #[inline]
    pub fn trace(&self) -> TraceId {
        self.trace
    }

    /// Wall-clock micros of the span's start (0 if unsampled).
    #[inline]
    pub fn start_unix_us(&self) -> u64 {
        self.start_unix_us
    }

    /// Marks a phase at the current offset from the span's start. Marks
    /// beyond the inline capacity are dropped (no phase chain reaches it).
    #[inline]
    pub fn mark(&mut self, phase: Phase) {
        if (self.len as usize) < MAX_MARKS {
            self.marks[self.len as usize] = (phase, self.start.elapsed().as_micros() as u64);
            self.len += 1;
        }
    }

    /// Microseconds since the span began.
    #[inline]
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// The recorded `(phase, offset_us)` marks.
    pub fn marks(&self) -> &[(Phase, u64)] {
        &self.marks[..self.len as usize]
    }
}

/// A captured slow operation: its full phase breakdown.
#[derive(Clone, Debug)]
pub struct SlowOp {
    /// What the op was ("write key=7 lane=2", "view_change 3->4", ...).
    pub label: String,
    /// End-to-end duration in microseconds.
    pub total_us: u64,
    /// `(phase, offset_us_from_start)` in occurrence order.
    pub phases: Vec<(Phase, &'static str, u64)>,
    /// Trace id (`0` if the op was not sampled for cross-node tracing).
    pub trace: u64,
    /// Node that captured this span.
    pub node: u32,
    /// Lane that captured this span (`u32::MAX` for non-lane rings).
    pub lane: u32,
    /// Wall-clock micros of the span start (`0` if unsampled).
    pub start_unix_us: u64,
}

impl SlowOp {
    /// One-line rendering: `label total=NNNus [phase+0us phase+12us ...]`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("slow-op {} total={}us [", self.label, self.total_us);
        for (i, (_, name, at)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{name}+{at}us");
        }
        out.push(']');
        out
    }

    /// Converts to the owned, wire-friendly record drained by the Traces
    /// RPC (phase names become owned strings so decoded records on the
    /// aggregator side are the same type).
    pub fn to_record(&self) -> TraceSpan {
        TraceSpan {
            trace: self.trace,
            node: self.node,
            lane: self.lane,
            start_unix_us: self.start_unix_us,
            total_us: self.total_us,
            label: self.label.clone(),
            phases: self
                .phases
                .iter()
                .map(|&(_, name, at)| (name.to_string(), at))
                .collect(),
        }
    }
}

/// One captured span as drained by the Traces client RPC: everything the
/// cluster aggregator needs to stitch cross-node timelines, with no
/// borrowed data so it round-trips through the wire codec.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSpan {
    /// Trace id (`0` if the span was captured by threshold, not sampling).
    pub trace: u64,
    /// Node that captured the span.
    pub node: u32,
    /// Lane that captured the span (`u32::MAX` for non-lane rings).
    pub lane: u32,
    /// Wall-clock micros of the span start (`0` if unknown).
    pub start_unix_us: u64,
    /// End-to-end duration in microseconds.
    pub total_us: u64,
    /// What the op was.
    pub label: String,
    /// `(phase_name, offset_us_from_start)` in occurrence order.
    pub phases: Vec<(String, u64)>,
}

/// Default slow-op threshold when `HERMES_SLOW_OP_US` is unset: 100 ms —
/// far above any healthy op on loopback, so production lanes only capture
/// genuine stalls.
pub const DEFAULT_SLOW_OP_US: u64 = 100_000;

/// How many slow-op reports a ring retains (oldest evicted first).
pub const SLOW_RING_CAP: usize = 64;

/// How many slow-op warn lines one ring may emit per second. The ring
/// still captures every qualifying span — this only throttles the
/// logger, so `HERMES_SLOW_OP_US=0` ("capture everything") is usable on
/// a live cluster without drowning the log.
pub const SLOW_WARNS_PER_SEC: u64 = 10;

/// A bounded ring of captured slow operations, one per lane (or
/// subsystem). Completion with a fast span is two atomic loads; only ops
/// over the threshold (or carrying a sampled trace) pay for formatting.
#[derive(Debug)]
pub struct TraceRing {
    /// Who owns this ring — prefixes log lines ("lane3", "pump", ...).
    owner: String,
    /// Node / lane tags stamped on captured spans (the Traces RPC and the
    /// cluster aggregator key on them).
    node: u32,
    lane: u32,
    created: Instant,
    threshold_us: AtomicU64,
    slow_total: AtomicU64,
    /// Log rate-limit state: current one-second window (seconds since
    /// `created`), emissions inside it, and emissions suppressed since
    /// the last line that made it out.
    emit_window_s: AtomicU64,
    emit_in_window: AtomicU64,
    emit_suppressed: AtomicU64,
    slow: Mutex<VecDeque<SlowOp>>,
}

impl TraceRing {
    /// A ring with the environment-derived threshold (`HERMES_SLOW_OP_US`,
    /// else [`DEFAULT_SLOW_OP_US`]).
    pub fn new(owner: impl Into<String>) -> Self {
        TraceRing::labeled(owner, 0, u32::MAX)
    }

    /// A ring tagged with the node and lane it belongs to; captured spans
    /// carry the tags so the cluster aggregator can attribute them.
    pub fn labeled(owner: impl Into<String>, node: u32, lane: u32) -> Self {
        let threshold = std::env::var("HERMES_SLOW_OP_US")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_SLOW_OP_US);
        TraceRing {
            owner: owner.into(),
            node,
            lane,
            created: Instant::now(),
            threshold_us: AtomicU64::new(threshold),
            slow_total: AtomicU64::new(0),
            emit_window_s: AtomicU64::new(u64::MAX),
            emit_in_window: AtomicU64::new(0),
            emit_suppressed: AtomicU64::new(0),
            slow: Mutex::new(VecDeque::with_capacity(8)),
        }
    }

    /// Overrides the slow-op threshold (tests force it to 0 to capture
    /// everything).
    pub fn set_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// The current slow-op threshold.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Completes a span: if it exceeded the threshold — or carries a
    /// sampled trace id, which must reach the cluster aggregator however
    /// fast the local work was — capture its phase breakdown (the `label`
    /// closure is only invoked for captured ops). Only threshold
    /// exceedances are warn-logged, through a per-ring rate limit; the
    /// ring itself captures everything that qualifies. Returns the span's
    /// total duration in microseconds.
    pub fn complete(&self, span: &Span, label: impl FnOnce() -> String) -> u64 {
        let total_us = span.elapsed_us();
        let slow = total_us >= self.threshold_us.load(Ordering::Relaxed);
        if slow || span.trace().is_sampled() {
            self.capture(span, total_us, label(), slow);
        }
        total_us
    }

    fn capture(&self, span: &Span, total_us: u64, label: String, slow: bool) {
        if slow {
            self.slow_total.fetch_add(1, Ordering::Relaxed);
        }
        let report = SlowOp {
            label: format!("{} {}", self.owner, label),
            total_us,
            phases: span
                .marks()
                .iter()
                .map(|&(p, at)| (p, p.name(), at))
                .collect(),
            trace: span.trace().0,
            node: self.node,
            lane: self.lane,
            start_unix_us: span.start_unix_us(),
        };
        if slow {
            self.emit_rate_limited(&report);
        }
        let mut ring = self.slow.lock().expect("trace ring lock");
        if ring.len() >= SLOW_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(report);
    }

    /// Emits the slow-op warn line unless this ring already emitted
    /// [`SLOW_WARNS_PER_SEC`] lines in the current one-second window;
    /// suppressed lines are counted and acknowledged on the next line
    /// that makes it out. Window bookkeeping races are benign — at worst
    /// a couple of extra lines slip through at a boundary.
    fn emit_rate_limited(&self, report: &SlowOp) {
        let now_s = self.created.elapsed().as_secs();
        if self.emit_window_s.swap(now_s, Ordering::Relaxed) != now_s {
            self.emit_in_window.store(0, Ordering::Relaxed);
        }
        if self.emit_in_window.fetch_add(1, Ordering::Relaxed) >= SLOW_WARNS_PER_SEC {
            self.emit_suppressed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let suppressed = self.emit_suppressed.swap(0, Ordering::Relaxed);
        if suppressed > 0 {
            crate::log::emit(
                crate::log::Level::Warn,
                "obs::trace",
                format_args!(
                    "{} ({suppressed} slow-op lines suppressed)",
                    report.render()
                ),
            );
        } else {
            crate::log::emit(
                crate::log::Level::Warn,
                "obs::trace",
                format_args!("{}", report.render()),
            );
        }
    }

    /// Total slow ops captured since startup (monotonic; the ring itself
    /// is bounded).
    pub fn slow_total(&self) -> u64 {
        self.slow_total.load(Ordering::Relaxed)
    }

    /// The retained slow-op reports, oldest first.
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        self.slow
            .lock()
            .expect("trace ring lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Drains the retained reports as wire-friendly [`TraceSpan`]
    /// records, oldest first — the Traces RPC consumes captures so each
    /// scrape sees every span exactly once.
    pub fn drain_spans(&self) -> Vec<TraceSpan> {
        self.slow
            .lock()
            .expect("trace ring lock")
            .drain(..)
            .map(|op| op.to_record())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_ops_are_not_captured() {
        let ring = TraceRing::new("lane0");
        ring.set_threshold_us(u64::MAX);
        let mut span = Span::begin(Phase::Issued);
        span.mark(Phase::Committed);
        ring.complete(&span, || unreachable!("label built for a fast op"));
        assert_eq!(ring.slow_total(), 0);
        assert!(ring.slow_ops().is_empty());
    }

    #[test]
    fn threshold_zero_captures_phase_breakdown() {
        let _quiet = crate::log::Capture::start();
        let ring = TraceRing::new("lane1");
        ring.set_threshold_us(0);
        let mut span = Span::begin(Phase::Issued);
        span.mark(Phase::InvalBroadcast);
        span.mark(Phase::AcksCollected);
        span.mark(Phase::Committed);
        span.mark(Phase::ReplyReleased);
        ring.complete(&span, || "write key=7".into());
        assert_eq!(ring.slow_total(), 1);
        let ops = ring.slow_ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].phases.len(), 5);
        assert!(ops[0].label.contains("lane1"));
        let line = ops[0].render();
        assert!(line.contains("issued+0us"), "{line}");
        assert!(line.contains("reply_released+"), "{line}");
    }

    #[test]
    fn ring_is_bounded() {
        let _quiet = crate::log::Capture::start();
        let ring = TraceRing::new("lane2");
        ring.set_threshold_us(0);
        for i in 0..(SLOW_RING_CAP + 10) {
            let span = Span::begin(Phase::Issued);
            ring.complete(&span, || format!("op {i}"));
        }
        assert_eq!(ring.slow_total() as usize, SLOW_RING_CAP + 10);
        let ops = ring.slow_ops();
        assert_eq!(ops.len(), SLOW_RING_CAP);
        // Oldest evicted: the first retained is op 10.
        assert!(ops[0].label.contains("op 10"), "{}", ops[0].label);
    }

    #[test]
    fn sampling_period_semantics() {
        assert_eq!(period_for_rate(0.0), 0);
        assert_eq!(period_for_rate(-1.0), 0);
        assert_eq!(period_for_rate(f64::NAN), 0);
        assert_eq!(period_for_rate(1.0), 1);
        assert_eq!(period_for_rate(2.0), 1);
        assert_eq!(period_for_rate(0.01), 100);
        assert_eq!(period_for_rate(0.5), 2);
    }

    #[test]
    fn minted_ids_are_sampled_and_distinct() {
        set_trace_sample(1.0);
        let a = maybe_trace();
        let b = maybe_trace();
        set_trace_sample(0.0);
        assert!(a.is_sampled() && b.is_sampled());
        assert_ne!(a, b);
        assert_eq!(maybe_trace(), TraceId::NONE, "rate 0 must mint nothing");
    }

    #[test]
    fn sampled_span_is_captured_below_threshold() {
        let _quiet = crate::log::Capture::start();
        let ring = TraceRing::labeled("lane0", 3, 1);
        ring.set_threshold_us(u64::MAX);
        let mut span = Span::begin_traced(Phase::InvIngress, TraceId(0xabcd));
        span.mark(Phase::LocalApply);
        ring.complete(&span, || "inv key=9".into());
        // Not slow: no warn bookkeeping — but the sampled span is retained.
        assert_eq!(ring.slow_total(), 0);
        let spans = ring.drain_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace, 0xabcd);
        assert_eq!(spans[0].node, 3);
        assert_eq!(spans[0].lane, 1);
        assert!(
            spans[0].start_unix_us > 0,
            "sampled span needs a wall anchor"
        );
        assert_eq!(spans[0].phases[0].0, "inv_ingress");
        assert_eq!(spans[0].phases[1].0, "local_apply");
        assert!(ring.drain_spans().is_empty(), "drain consumes");
    }

    #[test]
    fn warn_emission_is_rate_limited_but_ring_captures_all() {
        let capture = crate::log::Capture::start();
        let ring = TraceRing::new("lane9");
        ring.set_threshold_us(0);
        const N: usize = 200;
        for i in 0..N {
            let span = Span::begin(Phase::Issued);
            ring.complete(&span, || format!("op {i}"));
        }
        assert_eq!(ring.slow_total() as usize, N, "every op counted as slow");
        let lines = capture
            .take()
            .iter()
            .filter(|e| e.target == "obs::trace")
            .count() as u64;
        assert!(lines >= 1, "rate limit must not silence everything");
        // The loop spans well under a second; allow one window rollover.
        assert!(
            lines <= 2 * SLOW_WARNS_PER_SEC,
            "{lines} warn lines emitted for {N} slow ops"
        );
    }

    #[test]
    fn marks_are_monotonic_offsets() {
        let mut span = Span::begin(Phase::Issued);
        std::thread::sleep(std::time::Duration::from_millis(1));
        span.mark(Phase::Committed);
        let marks = span.marks();
        assert_eq!(marks[0], (Phase::Issued, 0));
        assert!(marks[1].1 >= 1_000, "second mark {}us", marks[1].1);
    }
}
