//! Per-lane structured protocol-phase tracing with slow-op capture.
//!
//! Every in-flight operation can carry a [`Span`]: a start instant plus a
//! small list of `(Phase, offset)` marks recorded as the op moves through
//! the protocol (issued → invalidations broadcast → acks collected →
//! committed → reply released, and the analogous view-change / sync /
//! transaction / cache-push phases). Marking is an `Instant::elapsed`
//! plus a `Vec` push — nothing is formatted on the hot path.
//!
//! When an op completes, [`TraceRing::complete`] checks the span against
//! the ring's slow-op threshold (`HERMES_SLOW_OP_US`, settable per ring).
//! Fast ops are dropped on the floor; a slow op's full phase breakdown is
//! captured into a bounded ring of [`SlowOp`] reports and emitted through
//! the [`crate::log`] logger at `warn`, so "where did the time go" is
//! answerable after the fact without re-running under a profiler.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Protocol phases an operation moves through. One flat namespace across
/// subsystems keeps a single breakdown readable when phases interleave
/// (e.g. a write held behind a cache push during a view change).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Client op arrived at its owning worker lane.
    Issued,
    /// Invalidations broadcast to the replica group.
    InvalBroadcast,
    /// All invalidation acks collected.
    AcksCollected,
    /// Write committed / read validated locally.
    Committed,
    /// Reply ready but held (subscriber invalidation push outstanding).
    ReplyHeld,
    /// Reply released to the client.
    ReplyReleased,
    /// Cache invalidation push sent to a subscribed session.
    CachePush,
    /// Cache push acknowledged by the session.
    CachePushAck,
    /// Held replies released after the last push ack.
    HoldRelease,
    /// View change proposed / detected.
    ViewChangeStart,
    /// New view installed.
    ViewChangeInstalled,
    /// One sync catch-up chunk installed.
    SyncChunkInstall,
    /// Transaction lock phase.
    TxnLock,
    /// Transaction validate phase.
    TxnValidate,
    /// Transaction apply phase.
    TxnApply,
    /// Transaction unlock phase.
    TxnUnlock,
}

impl Phase {
    /// Stable lower-case name (used in logs and dumps).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Issued => "issued",
            Phase::InvalBroadcast => "inval_broadcast",
            Phase::AcksCollected => "acks_collected",
            Phase::Committed => "committed",
            Phase::ReplyHeld => "reply_held",
            Phase::ReplyReleased => "reply_released",
            Phase::CachePush => "cache_push",
            Phase::CachePushAck => "cache_push_ack",
            Phase::HoldRelease => "hold_release",
            Phase::ViewChangeStart => "view_change_start",
            Phase::ViewChangeInstalled => "view_change_installed",
            Phase::SyncChunkInstall => "sync_chunk_install",
            Phase::TxnLock => "txn_lock",
            Phase::TxnValidate => "txn_validate",
            Phase::TxnApply => "txn_apply",
            Phase::TxnUnlock => "txn_unlock",
        }
    }
}

/// One in-flight operation's phase timeline.
#[derive(Clone, Debug)]
pub struct Span {
    start: Instant,
    marks: Vec<(Phase, u64)>,
}

impl Span {
    /// Starts a span at the current instant with its first phase mark.
    pub fn begin(phase: Phase) -> Self {
        let mut s = Span {
            start: Instant::now(),
            marks: Vec::with_capacity(4),
        };
        s.marks.push((phase, 0));
        s
    }

    /// Marks a phase at the current offset from the span's start.
    #[inline]
    pub fn mark(&mut self, phase: Phase) {
        self.marks
            .push((phase, self.start.elapsed().as_micros() as u64));
    }

    /// Microseconds since the span began.
    #[inline]
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// The recorded `(phase, offset_us)` marks.
    pub fn marks(&self) -> &[(Phase, u64)] {
        &self.marks
    }
}

/// A captured slow operation: its full phase breakdown.
#[derive(Clone, Debug)]
pub struct SlowOp {
    /// What the op was ("write key=7 lane=2", "view_change 3->4", ...).
    pub label: String,
    /// End-to-end duration in microseconds.
    pub total_us: u64,
    /// `(phase, offset_us_from_start)` in occurrence order.
    pub phases: Vec<(Phase, &'static str, u64)>,
}

impl SlowOp {
    /// One-line rendering: `label total=NNNus [phase+0us phase+12us ...]`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("slow-op {} total={}us [", self.label, self.total_us);
        for (i, (_, name, at)) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            let _ = write!(out, "{name}+{at}us");
        }
        out.push(']');
        out
    }
}

/// Default slow-op threshold when `HERMES_SLOW_OP_US` is unset: 100 ms —
/// far above any healthy op on loopback, so production lanes only capture
/// genuine stalls.
pub const DEFAULT_SLOW_OP_US: u64 = 100_000;

/// How many slow-op reports a ring retains (oldest evicted first).
pub const SLOW_RING_CAP: usize = 64;

/// A bounded ring of captured slow operations, one per lane (or
/// subsystem). Completion with a fast span is two atomic loads; only ops
/// over the threshold pay for formatting.
#[derive(Debug)]
pub struct TraceRing {
    /// Who owns this ring — prefixes log lines ("lane3", "pump", ...).
    owner: String,
    threshold_us: AtomicU64,
    slow_total: AtomicU64,
    slow: Mutex<VecDeque<SlowOp>>,
}

impl TraceRing {
    /// A ring with the environment-derived threshold (`HERMES_SLOW_OP_US`,
    /// else [`DEFAULT_SLOW_OP_US`]).
    pub fn new(owner: impl Into<String>) -> Self {
        let threshold = std::env::var("HERMES_SLOW_OP_US")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_SLOW_OP_US);
        TraceRing {
            owner: owner.into(),
            threshold_us: AtomicU64::new(threshold),
            slow_total: AtomicU64::new(0),
            slow: Mutex::new(VecDeque::with_capacity(8)),
        }
    }

    /// Overrides the slow-op threshold (tests force it to 0 to capture
    /// everything).
    pub fn set_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// The current slow-op threshold.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Completes a span: if it exceeded the threshold, capture its phase
    /// breakdown (the `label` closure is only invoked for slow ops).
    /// Returns the span's total duration in microseconds.
    pub fn complete(&self, span: &Span, label: impl FnOnce() -> String) -> u64 {
        let total_us = span.elapsed_us();
        if total_us >= self.threshold_us.load(Ordering::Relaxed) {
            self.capture(span, total_us, label());
        }
        total_us
    }

    fn capture(&self, span: &Span, total_us: u64, label: String) {
        self.slow_total.fetch_add(1, Ordering::Relaxed);
        let report = SlowOp {
            label: format!("{} {}", self.owner, label),
            total_us,
            phases: span
                .marks()
                .iter()
                .map(|&(p, at)| (p, p.name(), at))
                .collect(),
        };
        crate::log::emit(
            crate::log::Level::Warn,
            "obs::trace",
            format_args!("{}", report.render()),
        );
        let mut ring = self.slow.lock().expect("trace ring lock");
        if ring.len() >= SLOW_RING_CAP {
            ring.pop_front();
        }
        ring.push_back(report);
    }

    /// Total slow ops captured since startup (monotonic; the ring itself
    /// is bounded).
    pub fn slow_total(&self) -> u64 {
        self.slow_total.load(Ordering::Relaxed)
    }

    /// The retained slow-op reports, oldest first.
    pub fn slow_ops(&self) -> Vec<SlowOp> {
        self.slow
            .lock()
            .expect("trace ring lock")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_ops_are_not_captured() {
        let ring = TraceRing::new("lane0");
        ring.set_threshold_us(u64::MAX);
        let mut span = Span::begin(Phase::Issued);
        span.mark(Phase::Committed);
        ring.complete(&span, || unreachable!("label built for a fast op"));
        assert_eq!(ring.slow_total(), 0);
        assert!(ring.slow_ops().is_empty());
    }

    #[test]
    fn threshold_zero_captures_phase_breakdown() {
        let _quiet = crate::log::Capture::start();
        let ring = TraceRing::new("lane1");
        ring.set_threshold_us(0);
        let mut span = Span::begin(Phase::Issued);
        span.mark(Phase::InvalBroadcast);
        span.mark(Phase::AcksCollected);
        span.mark(Phase::Committed);
        span.mark(Phase::ReplyReleased);
        ring.complete(&span, || "write key=7".into());
        assert_eq!(ring.slow_total(), 1);
        let ops = ring.slow_ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].phases.len(), 5);
        assert!(ops[0].label.contains("lane1"));
        let line = ops[0].render();
        assert!(line.contains("issued+0us"), "{line}");
        assert!(line.contains("reply_released+"), "{line}");
    }

    #[test]
    fn ring_is_bounded() {
        let _quiet = crate::log::Capture::start();
        let ring = TraceRing::new("lane2");
        ring.set_threshold_us(0);
        for i in 0..(SLOW_RING_CAP + 10) {
            let span = Span::begin(Phase::Issued);
            ring.complete(&span, || format!("op {i}"));
        }
        assert_eq!(ring.slow_total() as usize, SLOW_RING_CAP + 10);
        let ops = ring.slow_ops();
        assert_eq!(ops.len(), SLOW_RING_CAP);
        // Oldest evicted: the first retained is op 10.
        assert!(ops[0].label.contains("op 10"), "{}", ops[0].label);
    }

    #[test]
    fn marks_are_monotonic_offsets() {
        let mut span = Span::begin(Phase::Issued);
        std::thread::sleep(std::time::Duration::from_millis(1));
        span.mark(Phase::Committed);
        let marks = span.marks();
        assert_eq!(marks[0], (Phase::Issued, 0));
        assert!(marks[1].1 >= 1_000, "second mark {}us", marks[1].1);
    }
}
