//! The `HERMES_LOG` leveled logger.
//!
//! A tiny structured replacement for the scattered `eprintln!`s that used
//! to carry daemon diagnostics: every event has a level, a target (the
//! subsystem that emitted it), and a message, rendered to stderr as
//!
//! ```text
//! [   1.204s WARN  replica::membership] view change 3 -> 4 (node 2 down)
//! ```
//!
//! The maximum level comes from the `HERMES_LOG` environment variable
//! (`off` / `error` / `warn` / `info` / `debug` / `trace`, default
//! `info`), read once. Emission below the level costs one relaxed atomic
//! load and no formatting — the [`obs_info!`]-family macros check before
//! building arguments.
//!
//! Tests assert on events instead of scraping stderr: [`Capture::start`]
//! redirects emission into an in-memory buffer (serialized process-wide,
//! so parallel tests queue rather than interleave).
//!
//! [`obs_info!`]: crate::obs_info

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Log severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The subsystem cannot continue as asked.
    Error = 1,
    /// Something surprising that the subsystem survived (slow ops land
    /// here).
    Warn = 2,
    /// Lifecycle events: view transitions, serving, shutdown.
    Info = 3,
    /// Per-decision detail (catch-up chunks, reconnects).
    Debug = 4,
    /// Hot-path firehose.
    Trace = 5,
}

impl Level {
    fn name(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

/// One captured log event.
#[derive(Clone, Debug)]
pub struct LogEvent {
    /// Severity.
    pub level: Level,
    /// Emitting subsystem (module-path style).
    pub target: String,
    /// Formatted message.
    pub message: String,
}

fn max_level() -> u8 {
    static MAX: OnceLock<u8> = OnceLock::new();
    *MAX.get_or_init(|| {
        match std::env::var("HERMES_LOG")
            .unwrap_or_default()
            .trim()
            .to_ascii_lowercase()
            .as_str()
        {
            "off" | "none" => 0,
            "error" => Level::Error as u8,
            "warn" => Level::Warn as u8,
            "debug" => Level::Debug as u8,
            "trace" => Level::Trace as u8,
            _ => Level::Info as u8,
        }
    })
}

/// Runtime override of the `HERMES_LOG` level (0 = off, 5 = trace);
/// `u8::MAX` means "use the environment". Lets a harness raise verbosity
/// for one phase without re-exec.
static OVERRIDE: AtomicU8 = AtomicU8::new(u8::MAX);

/// Overrides the maximum level at runtime (pass `None` to return control
/// to `HERMES_LOG`).
pub fn set_max_level(level: Option<Level>) {
    OVERRIDE.store(level.map_or(u8::MAX, |l| l as u8), Ordering::Relaxed);
}

/// Whether events at `level` would currently be emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    let cap = match OVERRIDE.load(Ordering::Relaxed) {
        u8::MAX => max_level(),
        v => v,
    };
    (level as u8) <= cap
}

fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

static CAPTURING: AtomicBool = AtomicBool::new(false);
static CAPTURE_BUF: Mutex<Vec<LogEvent>> = Mutex::new(Vec::new());
static CAPTURE_GATE: Mutex<()> = Mutex::new(());

fn unpoisoned<T>(m: &'static Mutex<T>) -> MutexGuard<'static, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Emits one event (already level-checked by the macros; checked again
/// here for direct callers).
pub fn emit(level: Level, target: &str, args: std::fmt::Arguments<'_>) {
    if !enabled(level) {
        return;
    }
    if CAPTURING.load(Ordering::Relaxed) {
        unpoisoned(&CAPTURE_BUF).push(LogEvent {
            level,
            target: target.to_string(),
            message: args.to_string(),
        });
        return;
    }
    let t = start_instant().elapsed();
    let mut err = std::io::stderr().lock();
    let _ = writeln!(
        err,
        "[{:>8.3}s {:<5} {}] {}",
        t.as_secs_f64(),
        level.name(),
        target,
        args
    );
}

/// Redirects all emission into an in-memory buffer until dropped. Holds a
/// process-wide gate so concurrent captures serialize.
pub struct Capture {
    _gate: MutexGuard<'static, ()>,
}

impl Capture {
    /// Starts capturing (clearing any previous buffer).
    pub fn start() -> Capture {
        let gate = unpoisoned(&CAPTURE_GATE);
        unpoisoned(&CAPTURE_BUF).clear();
        CAPTURING.store(true, Ordering::Relaxed);
        Capture { _gate: gate }
    }

    /// Drains the events captured so far.
    pub fn take(&self) -> Vec<LogEvent> {
        std::mem::take(&mut *unpoisoned(&CAPTURE_BUF))
    }
}

impl Drop for Capture {
    fn drop(&mut self) {
        CAPTURING.store(false, Ordering::Relaxed);
        unpoisoned(&CAPTURE_BUF).clear();
    }
}

/// Logs at [`Level::Error`]: `obs_error!("target", "fmt {}", args)`.
#[macro_export]
macro_rules! obs_error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::emit($crate::log::Level::Error, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! obs_warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::emit($crate::log::Level::Warn, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! obs_info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::emit($crate::log::Level::Info, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! obs_debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::emit($crate::log::Level::Debug, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! obs_trace {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Trace) {
            $crate::log::emit($crate::log::Level::Trace, $target, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_sees_leveled_events() {
        let cap = Capture::start();
        crate::obs_info!("test::target", "hello {}", 42);
        crate::obs_warn!("test::target", "uh oh");
        let events = cap.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].level, Level::Info);
        assert_eq!(events[0].target, "test::target");
        assert_eq!(events[0].message, "hello 42");
        assert_eq!(events[1].level, Level::Warn);
    }

    #[test]
    fn runtime_override_gates_emission() {
        let cap = Capture::start();
        set_max_level(Some(Level::Error));
        crate::obs_info!("test", "suppressed");
        crate::obs_error!("test", "kept");
        set_max_level(None);
        let events = cap.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].message, "kept");
    }

    #[test]
    fn level_ordering() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Info < Level::Trace);
    }
}
