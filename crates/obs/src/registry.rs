//! A process-local metrics registry with Prometheus text exposition.
//!
//! Registration happens once at subsystem startup (behind a mutex);
//! recording happens on hot paths through plain `Arc<AtomicU64>` handles
//! (no lock, no allocation). Rendering walks the registration list and
//! produces the text exposition format: `# HELP` / `# TYPE` headers and
//! one `name{label="value",...} value` line per sample, with histograms
//! rendered as summaries (quantile series plus `_sum` / `_count`), so any
//! Prometheus-compatible scraper — or a test with a 20-line parser — can
//! consume it.

use crate::hist::Histogram;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not (yet) attached to a registry.
    pub fn new() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not (yet) attached to a registry.
    pub fn new() -> Self {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one (saturating: a drain race never wraps to 2^64-1).
    #[inline]
    pub fn dec(&self) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Handle {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Hist(Arc<Histogram>),
    /// Computed at render time (e.g. values owned by another subsystem).
    Func(Box<dyn Fn() -> u64 + Send + Sync>),
    /// Like [`Handle::Func`] but typed (and rendered) as a counter.
    CounterFunc(Box<dyn Fn() -> u64 + Send + Sync>),
}

struct Metric {
    name: &'static str,
    help: &'static str,
    labels: Vec<(&'static str, String)>,
    handle: Handle,
}

/// The registry: a list of named metrics that renders to exposition text.
#[derive(Default)]
pub struct Registry {
    /// Labels prepended to every registered metric (e.g. `node="2"`), so
    /// scrapes from different daemons merge without sample collisions.
    base_labels: Vec<(&'static str, String)>,
    metrics: Mutex<Vec<Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// An empty registry whose every metric carries `base` labels first in
    /// its label set.
    pub fn with_base_labels(base: Vec<(&'static str, String)>) -> Self {
        Registry {
            base_labels: base,
            metrics: Mutex::new(Vec::new()),
        }
    }

    /// Registers and returns a counter.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Counter {
        let c = Counter::new();
        self.push(name, help, labels, Handle::Counter(Arc::clone(&c.0)));
        c
    }

    /// Registers and returns a gauge.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Gauge {
        let g = Gauge::new();
        self.push(name, help, labels, Handle::Gauge(Arc::clone(&g.0)));
        g
    }

    /// Registers and returns a histogram (rendered as a quantile summary).
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.push(name, help, labels, Handle::Hist(Arc::clone(&h)));
        h
    }

    /// Registers an atomic owned elsewhere as a counter sample — how
    /// pre-existing runtime gauges (`lane_ops`, push/plane gauges) feed
    /// the exposition without being rehomed.
    pub fn counter_shared(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        value: Arc<AtomicU64>,
    ) {
        self.push(name, help, labels, Handle::Counter(value));
    }

    /// Registers an atomic owned elsewhere as a gauge sample.
    pub fn gauge_shared(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        value: Arc<AtomicU64>,
    ) {
        self.push(name, help, labels, Handle::Gauge(value));
    }

    /// Registers a gauge computed by a closure at render time.
    pub fn gauge_fn(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.push(name, help, labels, Handle::Func(Box::new(f)));
    }

    /// Registers a counter computed by a closure at render time — for
    /// monotonic values owned by another subsystem that can't hand out an
    /// `Arc<AtomicU64>` (per-lane slots inside an `Arc<Vec<_>>`, accessor
    /// methods on a stats struct, ...).
    pub fn counter_fn(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.push(name, help, labels, Handle::CounterFunc(Box::new(f)));
    }

    /// Registers a histogram owned elsewhere (rendered as a quantile
    /// summary) — how per-lane latency histograms recorded by worker
    /// threads feed the exposition without being rehomed.
    pub fn histogram_shared(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        h: Arc<Histogram>,
    ) {
        self.push(name, help, labels, Handle::Hist(h));
    }

    fn push(
        &self,
        name: &'static str,
        help: &'static str,
        labels: Vec<(&'static str, String)>,
        handle: Handle,
    ) {
        let labels = if self.base_labels.is_empty() {
            labels
        } else {
            let mut all = self.base_labels.clone();
            all.extend(labels);
            all
        };
        self.metrics.lock().expect("registry lock").push(Metric {
            name,
            help,
            labels,
            handle,
        });
    }

    /// Renders the whole registry as Prometheus text exposition.
    pub fn render(&self) -> String {
        let metrics = self.metrics.lock().expect("registry lock");
        let mut out = String::with_capacity(4096);
        // Group consecutive same-name metrics under one HELP/TYPE header;
        // registration keeps families contiguous in practice, and repeat
        // headers are legal anyway.
        let mut last_name = "";
        for m in metrics.iter() {
            if m.name != last_name {
                let kind = match m.handle {
                    Handle::Counter(_) | Handle::CounterFunc(_) => "counter",
                    Handle::Gauge(_) | Handle::Func(_) => "gauge",
                    Handle::Hist(_) => "summary",
                };
                let _ = writeln!(out, "# HELP {} {}", m.name, m.help);
                let _ = writeln!(out, "# TYPE {} {}", m.name, kind);
                last_name = m.name;
            }
            match &m.handle {
                Handle::Counter(v) | Handle::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        m.name,
                        label_set(&m.labels, None),
                        v.load(Ordering::Relaxed)
                    );
                }
                Handle::Func(f) | Handle::CounterFunc(f) => {
                    let _ = writeln!(out, "{}{} {}", m.name, label_set(&m.labels, None), f());
                }
                Handle::Hist(h) => {
                    let s = h.snapshot();
                    for (q, p) in [
                        ("0.5", 50.0),
                        ("0.9", 90.0),
                        ("0.99", 99.0),
                        ("0.999", 99.9),
                    ] {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            m.name,
                            label_set(&m.labels, Some(q)),
                            s.percentile(p)
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        m.name,
                        label_set(&m.labels, None),
                        s.sum()
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        m.name,
                        label_set(&m.labels, None),
                        s.count()
                    );
                }
            }
        }
        out
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.metrics.lock().map(|m| m.len()).unwrap_or(0);
        write!(f, "Registry({n} metrics)")
    }
}

fn label_set(labels: &[(&'static str, String)], quantile: Option<&str>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape(v));
    }
    if let Some(q) = quantile {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "quantile=\"{q}\"");
    }
    out.push('}');
    out
}

fn escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Returns `Ok(())` when `text` is well-formed exposition: every
/// non-empty line is a comment (`# ...`) or `name{labels} value` with a
/// parseable numeric value. The CI smoke test and unit tests share this
/// instead of each growing a private parser.
///
/// # Errors
///
/// Returns the first offending line.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("no value separator: {line:?}"))?;
        if value.parse::<f64>().is_err() {
            return Err(format!("unparseable value {value:?}: {line:?}"));
        }
        let name = match series.split_once('{') {
            Some((name, rest)) => {
                if !rest.ends_with('}') {
                    return Err(format!("unterminated label set: {line:?}"));
                }
                name
            }
            None => series,
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("bad metric name {name:?}: {line:?}"));
        }
    }
    Ok(())
}

/// The value of the first sample whose series line starts with `prefix`
/// (metric name, optionally with a leading part of the label set) — a
/// tiny query helper for tests and harnesses.
pub fn sample_value(text: &str, prefix: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        if !line.starts_with(prefix) || line.starts_with('#') {
            return None;
        }
        line.rsplit_once(' ').and_then(|(_, v)| v.parse().ok())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_render() {
        let r = Registry::new();
        let c = r.counter("ops_total", "Total operations.", vec![("lane", "0".into())]);
        let g = r.gauge("open_things", "Things open now.", vec![]);
        c.add(3);
        g.set(7);
        g.inc();
        g.dec();
        let text = r.render();
        assert!(text.contains("# HELP ops_total Total operations."));
        assert!(text.contains("# TYPE ops_total counter"));
        assert!(text.contains("ops_total{lane=\"0\"} 3"));
        assert!(text.contains("open_things 7"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn gauge_dec_saturates() {
        let g = Gauge::new();
        g.dec();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_renders_as_summary() {
        let r = Registry::new();
        let h = r.histogram("op_us", "Op latency (us).", vec![("lane", "1".into())]);
        for v in 1..=1000 {
            h.record(v);
        }
        let text = r.render();
        assert!(text.contains("# TYPE op_us summary"));
        assert!(text.contains("op_us{lane=\"1\",quantile=\"0.99\"}"));
        assert!(text.contains("op_us_count{lane=\"1\"} 1000"));
        let p50 = sample_value(&text, "op_us{lane=\"1\",quantile=\"0.5\"}").unwrap();
        assert!((400.0..=600.0).contains(&p50), "p50 {p50}");
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn shared_and_fn_handles_sample_live_values() {
        let r = Registry::new();
        let shared = Arc::new(AtomicU64::new(0));
        r.counter_shared(
            "ext_total",
            "External counter.",
            vec![],
            Arc::clone(&shared),
        );
        r.gauge_fn("computed", "Computed gauge.", vec![], || 41 + 1);
        let slots = Arc::new(vec![AtomicU64::new(5), AtomicU64::new(6)]);
        for lane in 0..slots.len() {
            let slots = Arc::clone(&slots);
            r.counter_fn(
                "lane_total",
                "Per-lane counter.",
                vec![("lane", lane.to_string())],
                move || slots[lane].load(Ordering::Relaxed),
            );
        }
        let ext_hist = Arc::new(Histogram::new());
        ext_hist.record(10);
        r.histogram_shared(
            "ext_us",
            "External histogram.",
            vec![],
            Arc::clone(&ext_hist),
        );
        shared.store(9, Ordering::Relaxed);
        let text = r.render();
        assert!(text.contains("ext_total 9"));
        assert!(text.contains("computed 42"));
        assert!(text.contains("# TYPE lane_total counter"));
        assert!(text.contains("lane_total{lane=\"1\"} 6"));
        assert!(text.contains("ext_us_count 1"));
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(validate_exposition("ok_metric 1\n").is_ok());
        assert!(validate_exposition("bad metric name 1\n").is_err());
        assert!(validate_exposition("noval\n").is_err());
        assert!(validate_exposition("m{unterminated 1\n").is_err());
        assert!(validate_exposition("m{l=\"x\"} notanumber\n").is_err());
    }

    #[test]
    fn base_labels_prefix_every_metric() {
        let r = Registry::with_base_labels(vec![("node", "2".into())]);
        let c = r.counter("ops_total", "Total operations.", vec![("lane", "1".into())]);
        let h = r.histogram("op_us", "Op latency (us).", vec![]);
        c.inc();
        h.record(5);
        let text = r.render();
        assert!(
            text.contains("ops_total{node=\"2\",lane=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("op_us{node=\"2\",quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(text.contains("op_us_count{node=\"2\"} 1"), "{text}");
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Registry::new();
        r.gauge("g", "Gauge.", vec![("path", "a\"b\\c".into())]);
        let text = r.render();
        assert!(text.contains("g{path=\"a\\\"b\\\\c\"} 0"));
        validate_exposition(&text).unwrap();
    }
}
