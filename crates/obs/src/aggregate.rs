//! Cluster-level aggregation: merging per-node metric scrapes and
//! stitching cross-node trace spans into causal timelines.
//!
//! A Hermes write is a multi-node event — coordinator broadcasts INV,
//! followers ack, VAL commits (paper Fig. 2/3) — so a slow op's story is
//! spread over every replica's [`TraceRing`](crate::TraceRing). This
//! module is the pure (no I/O) half of `hermes-top`: it takes the text
//! expositions and [`TraceSpan`] records scraped from each daemon's
//! Metrics / Traces RPCs and produces
//!
//! * one merged, node-labeled exposition ([`merge_expositions`]), and
//! * one [`Timeline`] per trace id ([`stitch`]), ordering every phase
//!   mark from every node on a single axis
//!   (`issued@n0 +0us -> inv_ingress@n1 +130us -> ack_write@n1 +180us ->
//!   acks_collected@n0 +410us`), with [`Timeline::slowest_gap`] naming
//!   the node that made the op slow.
//!
//! Marks from different processes are aligned by each span's wall-clock
//! anchor (`start_unix_us`). Within one machine — the deployment the
//! 3-process smoke runs — the clock is shared and the alignment is exact
//! to clock-read noise; across machines it is as good as NTP, which is
//! plenty to attribute a stall an order of magnitude above the skew.

use crate::trace::TraceSpan;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Merges per-node expositions into one: `# HELP` / `# TYPE` headers are
/// emitted once per family (first scrape wins) and every node's sample
/// lines are grouped under them, in first-seen family order. Assumes the
/// scrapes already carry a distinguishing `node="<id>"` label (the
/// daemon's registry adds it).
pub fn merge_expositions(scrapes: &[String]) -> String {
    let mut order: Vec<String> = Vec::new();
    let mut headers: HashMap<String, Vec<String>> = HashMap::new();
    let mut samples: HashMap<String, Vec<String>> = HashMap::new();
    for text in scrapes {
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let (fam, is_header) = if let Some(rest) = line.strip_prefix('#') {
                let name = rest.split_whitespace().nth(1).unwrap_or("");
                (family_of(name), true)
            } else {
                let name = line.split(['{', ' ']).next().unwrap_or(line);
                (family_of(name), false)
            };
            if !headers.contains_key(&fam) && !samples.contains_key(&fam) {
                order.push(fam.clone());
            }
            if is_header {
                let fam_headers = headers.entry(fam).or_default();
                if !fam_headers.iter().any(|h| h == line) {
                    fam_headers.push(line.to_string());
                }
            } else {
                samples.entry(fam).or_default().push(line.to_string());
            }
        }
    }
    let mut out = String::with_capacity(scrapes.iter().map(String::len).sum());
    for fam in &order {
        for h in headers.get(fam).map(Vec::as_slice).unwrap_or_default() {
            out.push_str(h);
            out.push('\n');
        }
        for s in samples.get(fam).map(Vec::as_slice).unwrap_or_default() {
            out.push_str(s);
            out.push('\n');
        }
    }
    out
}

/// The family a sample name belongs to: histogram-summary suffixes fold
/// into their base name so `op_us_sum` / `op_us_count` group with
/// `op_us`.
fn family_of(name: &str) -> String {
    name.strip_suffix("_sum")
        .or_else(|| name.strip_suffix("_count"))
        .unwrap_or(name)
        .to_string()
}

/// One phase mark on a stitched cluster timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Node that recorded the mark.
    pub node: u32,
    /// Lane that recorded it (`u32::MAX` for non-lane rings).
    pub lane: u32,
    /// Phase name (`issued`, `inv_ingress`, `ack_write`, ...).
    pub phase: String,
    /// Microseconds after the timeline's first event.
    pub at_us: u64,
}

/// Every phase mark sharing one trace id, from every node, on one axis.
#[derive(Clone, Debug)]
pub struct Timeline {
    /// The trace id the constituent spans shared.
    pub trace: u64,
    /// Label of the originating (coordinator) span when identifiable,
    /// else of the first span seen.
    pub label: String,
    /// First-to-last extent of the stitched timeline in microseconds.
    pub total_us: u64,
    /// Marks in causal (wall-clock) order.
    pub events: Vec<TimelineEvent>,
}

impl Timeline {
    /// One-line rendering:
    /// `trace=00ab.. total=410us <label>: issued@n0 +0us -> inv_ingress@n1 +130us -> ...`.
    pub fn render(&self) -> String {
        let mut out = format!(
            "trace={:016x} total={}us {}: ",
            self.trace, self.total_us, self.label
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(" -> ");
            }
            let _ = write!(out, "{}@n{} +{}us", e.phase, e.node, e.at_us);
        }
        out
    }

    /// The event that ended the longest wait between consecutive marks,
    /// with that wait in microseconds — "which replica made this op
    /// slow" in one lookup. `None` for timelines with fewer than two
    /// events.
    pub fn slowest_gap(&self) -> Option<(&TimelineEvent, u64)> {
        self.events
            .windows(2)
            .map(|w| (&w[1], w[1].at_us - w[0].at_us))
            .max_by_key(|&(_, gap)| gap)
    }
}

/// Groups spans by trace id and merges each group's marks into one
/// [`Timeline`], slowest first. Spans without a trace id or wall-clock
/// anchor (threshold-captured local slow ops) cannot be aligned across
/// processes and are skipped.
pub fn stitch(spans: &[TraceSpan]) -> Vec<Timeline> {
    let mut order: Vec<u64> = Vec::new();
    let mut groups: HashMap<u64, Vec<&TraceSpan>> = HashMap::new();
    for span in spans {
        if span.trace == 0 || span.start_unix_us == 0 {
            continue;
        }
        let group = groups.entry(span.trace).or_default();
        if group.is_empty() {
            order.push(span.trace);
        }
        group.push(span);
    }
    let mut timelines: Vec<Timeline> = order
        .into_iter()
        .map(|trace| {
            let group = &groups[&trace];
            let label = group
                .iter()
                .find(|s| s.phases.iter().any(|(p, _)| p == "issued"))
                .unwrap_or(&group[0])
                .label
                .clone();
            let mut marks: Vec<(u64, TimelineEvent)> = Vec::new();
            for span in group {
                for (phase, off) in &span.phases {
                    marks.push((
                        span.start_unix_us + off,
                        TimelineEvent {
                            node: span.node,
                            lane: span.lane,
                            phase: phase.clone(),
                            at_us: 0,
                        },
                    ));
                }
            }
            marks.sort_by_key(|&(abs, _)| abs);
            let start = marks.first().map(|&(abs, _)| abs).unwrap_or(0);
            let total_us = marks.last().map(|&(abs, _)| abs - start).unwrap_or(0);
            let events = marks
                .into_iter()
                .map(|(abs, mut e)| {
                    e.at_us = abs - start;
                    e
                })
                .collect();
            Timeline {
                trace,
                label,
                total_us,
                events,
            }
        })
        .collect();
    timelines.sort_by_key(|t| std::cmp::Reverse(t.total_us));
    timelines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        trace: u64,
        node: u32,
        start_unix_us: u64,
        label: &str,
        phases: &[(&str, u64)],
    ) -> TraceSpan {
        TraceSpan {
            trace,
            node,
            lane: 0,
            start_unix_us,
            total_us: phases.last().map(|&(_, at)| at).unwrap_or(0),
            label: label.to_string(),
            phases: phases.iter().map(|&(p, at)| (p.to_string(), at)).collect(),
        }
    }

    #[test]
    fn stitch_orders_marks_across_nodes() {
        let spans = vec![
            span(
                7,
                0,
                1_000_000,
                "n0/lane0 op client=1 seq=4",
                &[
                    ("issued", 0),
                    ("inval_broadcast", 20),
                    ("acks_collected", 410),
                    ("committed", 420),
                    ("reply_released", 430),
                ],
            ),
            span(
                7,
                1,
                1_000_130,
                "n1/lane0 inv key=9",
                &[("inv_ingress", 0), ("local_apply", 20), ("ack_write", 50)],
            ),
        ];
        let timelines = stitch(&spans);
        assert_eq!(timelines.len(), 1);
        let t = &timelines[0];
        assert_eq!(t.trace, 7);
        assert_eq!(t.total_us, 430);
        assert_eq!(t.label, "n0/lane0 op client=1 seq=4");
        let order: Vec<(&str, u32)> = t
            .events
            .iter()
            .map(|e| (e.phase.as_str(), e.node))
            .collect();
        assert_eq!(
            order,
            vec![
                ("issued", 0),
                ("inval_broadcast", 0),
                ("inv_ingress", 1),
                ("local_apply", 1),
                ("ack_write", 1),
                ("acks_collected", 0),
                ("committed", 0),
                ("reply_released", 0),
            ]
        );
        let line = t.render();
        assert!(line.contains("issued@n0 +0us"), "{line}");
        assert!(line.contains("inv_ingress@n1 +130us"), "{line}");
        assert!(line.contains("ack_write@n1 +180us"), "{line}");
        assert!(line.contains("acks_collected@n0 +410us"), "{line}");
    }

    #[test]
    fn slowest_gap_names_the_stalled_node() {
        let spans = vec![
            span(
                9,
                0,
                5_000_000,
                "n0/lane1 op client=2 seq=1",
                &[
                    ("issued", 0),
                    ("acks_collected", 50_400),
                    ("committed", 50_410),
                ],
            ),
            span(
                9,
                2,
                5_000_100,
                "n2/lane1 inv key=3",
                &[
                    ("inv_ingress", 0),
                    ("local_apply", 50_000),
                    ("ack_write", 50_050),
                ],
            ),
        ];
        let timelines = stitch(&spans);
        let (event, gap) = timelines[0].slowest_gap().expect("gap");
        assert_eq!(event.node, 2, "delay must be attributed to the follower");
        assert_eq!(event.phase, "local_apply");
        assert!(gap >= 49_000, "gap {gap}");
    }

    #[test]
    fn stitch_skips_unanchored_and_sorts_slowest_first() {
        let spans = vec![
            span(0, 0, 1_000, "local slow op", &[("issued", 0)]),
            span(1, 0, 1_000, "fast", &[("issued", 0), ("committed", 10)]),
            span(2, 0, 1_000, "slow", &[("issued", 0), ("committed", 99)]),
            span(3, 0, 0, "no anchor", &[("issued", 0)]),
        ];
        let timelines = stitch(&spans);
        assert_eq!(timelines.len(), 2);
        assert_eq!(timelines[0].trace, 2);
        assert_eq!(timelines[1].trace, 1);
    }

    #[test]
    fn merge_groups_samples_under_one_header() {
        let n0 = "# HELP ops_total Total operations.\n# TYPE ops_total counter\n\
                  ops_total{node=\"0\"} 3\n\
                  # HELP op_us Op latency.\n# TYPE op_us summary\n\
                  op_us{node=\"0\",quantile=\"0.99\"} 12\nop_us_sum{node=\"0\"} 40\nop_us_count{node=\"0\"} 4\n";
        let n1 = "# HELP ops_total Total operations.\n# TYPE ops_total counter\n\
                  ops_total{node=\"1\"} 5\n\
                  # HELP op_us Op latency.\n# TYPE op_us summary\n\
                  op_us{node=\"1\",quantile=\"0.99\"} 9\nop_us_sum{node=\"1\"} 20\nop_us_count{node=\"1\"} 2\n";
        let merged = merge_expositions(&[n0.to_string(), n1.to_string()]);
        crate::validate_exposition(&merged).unwrap();
        assert_eq!(merged.matches("# TYPE ops_total counter").count(), 1);
        assert_eq!(merged.matches("# TYPE op_us summary").count(), 1);
        assert!(merged.contains("ops_total{node=\"0\"} 3"));
        assert!(merged.contains("ops_total{node=\"1\"} 5"));
        let counter_block = merged.find("ops_total{node=\"1\"}").unwrap();
        let summary_header = merged.find("# HELP op_us").unwrap();
        assert!(
            counter_block < summary_header,
            "samples must group under their family header:\n{merged}"
        );
        assert_eq!(
            crate::sample_value(&merged, "op_us_count{node=\"1\"}"),
            Some(2.0)
        );
    }
}
