//! Property fuzz of the exposition round-trip (DESIGN.md §9): label
//! values drawn from a palette heavy in quotes, backslashes and newlines
//! must render to expositions that [`validate_exposition`] accepts and
//! [`sample_value`] reads back exactly — one line per sample, no matter
//! what the labels contain — and [`merge_expositions`] must preserve
//! both properties when it regroups scrapes from several nodes.
//!
//! The escaping contract under test: a rendered label value is the raw
//! value with `\` → `\\`, `"` → `\"` and newline → `\n` applied, so a
//! scraper that unescapes those three sequences recovers the original.

use hermes_obs::{merge_expositions, sample_value, validate_exposition, Registry};
use proptest::prelude::*;

/// What the registry is expected to emit for a label value — the
/// documented escaping contract, restated independently of the
/// implementation.
fn expected_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Reader-side unescape: the inverse of [`expected_escape`].
fn unescape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Label values biased hard toward the characters that break naive
/// exposition writers: quotes, backslashes, newlines — plus braces,
/// equals signs, commas and spaces, which must pass through untouched.
fn nasty_value() -> impl Strategy<Value = String> {
    let palette: Vec<char> = vec![
        '"', '\\', '\n', '"', '\\', '\n', // double weight on the escapes
        '{', '}', '=', ',', ' ', 'a', 'Z', '7', '_', 'µ', '→',
    ];
    collection::vec(0usize..17, 0..12).prop_map(move |idx| {
        idx.into_iter()
            .map(|i| palette[i % palette.len()])
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Counter + gauge + histogram with hostile label values (including a
    /// hostile `node` base label): the rendering validates, every sample
    /// stays on one physical line, and reading the series back through
    /// the documented unescape recovers the original label values and the
    /// recorded numbers exactly.
    #[test]
    fn hostile_labels_round_trip(
        node_label in nasty_value(),
        lane_label in nasty_value(),
        path_label in nasty_value(),
        count in 0u64..1_000_000,
        gauge_v in 0u64..1_000_000,
        records in 1u64..64,
    ) {
        let r = Registry::with_base_labels(vec![("node", node_label.clone())]);
        let c = r.counter("fz_ops_total", "Fuzzed counter.", vec![("lane", lane_label.clone())]);
        let g = r.gauge("fz_open", "Fuzzed gauge.", vec![("path", path_label.clone())]);
        let h = r.histogram("fz_us", "Fuzzed histogram.", vec![]);
        c.add(count);
        g.set(gauge_v);
        for v in 0..records {
            h.record(v + 1);
        }
        let text = r.render();
        validate_exposition(&text).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));

        // One line per sample: raw newlines in label values must not
        // split lines. 3 families x 2 header lines + 1 counter + 1 gauge
        // + 4 quantiles + _sum + _count.
        prop_assert_eq!(text.lines().count(), 6 + 1 + 1 + 6, "{}", text);

        let counter_series = format!(
            "fz_ops_total{{node=\"{}\",lane=\"{}\"}}",
            expected_escape(&node_label),
            expected_escape(&lane_label)
        );
        prop_assert_eq!(sample_value(&text, &counter_series), Some(count as f64), "{}", text);
        let gauge_series = format!(
            "fz_open{{node=\"{}\",path=\"{}\"}}",
            expected_escape(&node_label),
            expected_escape(&path_label)
        );
        prop_assert_eq!(sample_value(&text, &gauge_series), Some(gauge_v as f64), "{}", text);
        let hist_count = format!("fz_us_count{{node=\"{}\"}}", expected_escape(&node_label));
        prop_assert_eq!(sample_value(&text, &hist_count), Some(records as f64), "{}", text);

        // The reader-side inverse recovers the raw values from the line.
        let line = text
            .lines()
            .find(|l| l.starts_with("fz_open"))
            .expect("gauge line");
        let rendered = line
            .split("path=\"")
            .nth(1)
            .and_then(|r| r.rsplit_once("\"}"))
            .map(|(v, _)| v)
            .expect("path label");
        prop_assert_eq!(unescape(rendered), path_label);
    }

    /// Merging scrapes whose node labels and samples are hostile keeps the
    /// merged exposition valid and every node's samples readable — the
    /// aggregator path never corrupts escaped labels.
    #[test]
    fn hostile_merge_round_trips(
        label_a in nasty_value(),
        label_b in nasty_value(),
        v_a in 0u64..1_000_000,
        v_b in 0u64..1_000_000,
    ) {
        let scrape = |node: &str, lane: &str, v: u64| {
            let r = Registry::with_base_labels(vec![("node", node.to_string())]);
            let c = r.counter("fz_merge_total", "Fuzzed counter.", vec![("lane", lane.to_string())]);
            c.add(v);
            r.render()
        };
        let merged = merge_expositions(&[
            scrape("0", &label_a, v_a),
            scrape("1", &label_b, v_b),
        ]);
        validate_exposition(&merged).unwrap_or_else(|e| panic!("invalid merge: {e}\n{merged}"));
        prop_assert_eq!(merged.matches("# TYPE fz_merge_total counter").count(), 1, "{}", merged);
        let series_a = format!("fz_merge_total{{node=\"0\",lane=\"{}\"}}", expected_escape(&label_a));
        let series_b = format!("fz_merge_total{{node=\"1\",lane=\"{}\"}}", expected_escape(&label_b));
        prop_assert_eq!(sample_value(&merged, &series_a), Some(v_a as f64), "{}", merged);
        prop_assert_eq!(sample_value(&merged, &series_b), Some(v_b as f64), "{}", merged);
    }
}
