//! # hermes-bench — the paper's evaluation harness
//!
//! One bench target per evaluation artifact of the paper (Tables 1–2,
//! Figures 5–9), each printing the paper's reported series next to the
//! values measured on this reproduction's simulated cluster, plus Criterion
//! micro-benchmarks of the substrates. Run everything with
//! `cargo bench --workspace`; scale the simulated op counts with the
//! `HERMES_SCALE` environment variable (default `0.1`; `1.0` ≈ paper-scale).
//!
//! The simulator reproduces *shapes* (who wins, by what factor, where
//! crossovers fall), not the absolute testbed numbers — see DESIGN.md §1
//! and EXPERIMENTS.md for the substitution rationale and the recorded
//! paper-vs-measured comparisons.

#![warn(missing_docs)]

use hermes_common::MembershipView;
use hermes_core::{HermesNode, ProtocolConfig};
use hermes_replica::{run_sim, CostModel, RunReport, SimConfig};
use hermes_workload::WorkloadConfig;

/// Scale factor for simulated op counts (`HERMES_SCALE` env var).
pub fn scale() -> f64 {
    std::env::var("HERMES_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1_f64)
        .clamp(0.001, 10.0)
}

/// Scales an op count by [`scale`], with a floor to stay statistically
/// meaningful.
pub fn scaled_ops(base: u64) -> u64 {
    ((base as f64 * scale()) as u64).max(5_000)
}

/// The paper's standard cluster configuration (§5.2): 5 nodes, 20 workers,
/// 1M keys, 8 B keys / 32 B values. Key count is scaled with the op budget
/// to keep cache behaviour proportionate.
pub fn paper_cluster(nodes: usize, write_ratio: f64, zipf: Option<f64>) -> SimConfig {
    // Skewed workloads run at much higher absolute request rates (cache-hot
    // reads), so the paper's client pipelines are proportionally deeper;
    // without that depth the tail-node hotspot (rCRAQ's Achilles heel,
    // §6.2) never becomes the binding resource.
    let sessions_per_node = if zipf.is_some() { 384 } else { 48 };
    // Steady state requires every closed-loop session to have cycled
    // through several writes (queues at serialization points and chain
    // tails build up over write cycles); at low write ratios that needs
    // proportionally more operations.
    let steady = if write_ratio > 0.0 {
        ((nodes * sessions_per_node) as f64 * 4.0 / write_ratio) as u64
    } else {
        0
    };
    SimConfig {
        nodes,
        workers_per_node: 20,
        sessions_per_node,
        workload: WorkloadConfig {
            keys: ((1_000_000_f64 * scale()) as u64).max(10_000),
            write_ratio,
            zipf_theta: zipf,
            value_size: 32,
            ..WorkloadConfig::default()
        },
        cost: if zipf.is_some() {
            CostModel::skewed()
        } else {
            CostModel::uniform()
        },
        warmup_ops: scaled_ops(100_000).max(steady),
        measured_ops: scaled_ops(400_000).max(steady),
        seed: 42,
        ..SimConfig::default()
    }
}

/// Runs Hermes (default protocol config) on `cfg`.
pub fn run_hermes(cfg: &SimConfig) -> RunReport {
    run_sim(cfg, |id, n| {
        HermesNode::new(id, MembershipView::initial(n), ProtocolConfig::default())
    })
}

/// Runs Hermes with an explicit protocol config (ablations).
pub fn run_hermes_with(cfg: &SimConfig, pcfg: ProtocolConfig) -> RunReport {
    run_sim(cfg, move |id, n| {
        HermesNode::new(id, MembershipView::initial(n), pcfg)
    })
}

/// Runs the rZAB baseline on `cfg`.
pub fn run_zab(cfg: &SimConfig) -> RunReport {
    run_sim(cfg, hermes_baselines::ZabNode::new)
}

/// Runs the rCRAQ baseline on `cfg`.
pub fn run_craq(cfg: &SimConfig) -> RunReport {
    run_sim(cfg, hermes_baselines::CraqNode::new)
}

/// Runs the CR baseline on `cfg`.
pub fn run_cr(cfg: &SimConfig) -> RunReport {
    run_sim(cfg, hermes_baselines::CrNode::new)
}

/// Runs the ABD baseline on `cfg`.
pub fn run_abd(cfg: &SimConfig) -> RunReport {
    run_sim(cfg, hermes_baselines::AbdNode::new)
}

/// Runs the lock-step SMR (Derecho-like) baseline on `cfg`.
pub fn run_lockstep(cfg: &SimConfig) -> RunReport {
    run_sim(cfg, hermes_baselines::LockstepNode::new)
}

/// Pretty-prints a bench section header.
pub fn header(title: &str, paper_note: &str) {
    println!();
    println!("=== {title} ===");
    println!("    paper: {paper_note}");
    println!(
        "    (HERMES_SCALE={}, shapes matter, absolutes don't)",
        scale()
    );
}

/// Formats throughput in MReq/s.
pub fn mreqs(r: &RunReport) -> String {
    format!("{:8.1} MReq/s", r.throughput_mreqs)
}

/// A quick correctness cross-check usable from benches: Hermes read-only
/// runs must produce zero protocol messages.
pub fn assert_read_only_is_local(cfg: &SimConfig) {
    assert!((cfg.workload.write_ratio - 0.0).abs() < f64::EPSILON);
    let r = run_hermes(cfg);
    assert_eq!(r.messages_sent, 0, "read-only Hermes must stay local");
}

/// Placeholder referenced by unit tests of the harness itself.
pub fn self_test() -> bool {
    let mut cfg = paper_cluster(3, 0.05, None);
    cfg.warmup_ops = 500;
    cfg.measured_ops = 2_000;
    cfg.workload.keys = 1_000;
    cfg.sessions_per_node = 16;
    cfg.workers_per_node = 4;
    let r = run_hermes(&cfg);
    r.ops_completed == 2_000 && r.throughput_mreqs > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_or_defaults() {
        let s = scale();
        assert!(s > 0.0 && s <= 10.0);
        assert!(scaled_ops(100_000) >= 5_000);
    }

    #[test]
    fn harness_self_test() {
        assert!(self_test());
    }

    #[test]
    fn paper_cluster_shapes() {
        let c = paper_cluster(5, 0.2, Some(0.99));
        assert_eq!(c.nodes, 5);
        assert!(c.workload.zipf_theta.is_some());
        assert!(c.cost.hot_ranks > 0);
        let c = paper_cluster(3, 0.0, None);
        assert_eq!(c.cost.hot_ranks, 0);
    }
}
