//! Figure 7: scalability with replication degree (paper §6.4).
//!
//! Throughput of the three systems at 3, 5 and 7 replicas under 1% and 20%
//! write ratios. Shapes to reproduce: Hermes scales near-linearly at 1%
//! (local reads benefit from added replicas); rCRAQ's longer chain hurts at
//! 20% (5→7 degrades); rZAB's leader melts at 20% (5→7 roughly halves).

use hermes_bench::{header, paper_cluster, run_craq, run_hermes, run_zab};

fn main() {
    header(
        "Figure 7: throughput at 3/5/7 replicas, 1% and 20% writes [uniform]",
        "Hermes ~linear at 1%; rCRAQ degrades 5->7 at 20%; rZAB halves 5->7 at 20%",
    );
    for ratio in [0.01f64, 0.20] {
        println!();
        println!("write ratio {:.0}%:", ratio * 100.0);
        println!(
            "{:>7} | {:>14} {:>14} {:>14}",
            "nodes", "Hermes", "rCRAQ", "rZAB"
        );
        let mut hermes_by_n = Vec::new();
        let mut zab_by_n = Vec::new();
        for nodes in [3usize, 5, 7] {
            let cfg = paper_cluster(nodes, ratio, None);
            let h = run_hermes(&cfg);
            let c = run_craq(&cfg);
            let z = run_zab(&cfg);
            println!(
                "{:>7} | {:>9.1} MR/s {:>9.1} MR/s {:>9.1} MR/s",
                nodes, h.throughput_mreqs, c.throughput_mreqs, z.throughput_mreqs
            );
            hermes_by_n.push(h.throughput_mreqs);
            zab_by_n.push(z.throughput_mreqs);
        }
        if ratio < 0.05 {
            // Near-linear read scaling for Hermes at 1% writes: 7 nodes
            // should deliver well over 1.8x the 3-node throughput.
            let gain = hermes_by_n[2] / hermes_by_n[0];
            assert!(
                gain > 1.8,
                "Hermes 3->7 scaling at 1% writes too weak: {gain:.2}x"
            );
        } else {
            // rZAB must not scale at 20% writes (leader-bound).
            let zab_gain = zab_by_n[2] / zab_by_n[1];
            assert!(
                zab_gain < 1.1,
                "rZAB should not gain from more replicas at 20% writes ({zab_gain:.2}x)"
            );
        }
    }
    println!();
    println!("figure 7 harness complete");
}
