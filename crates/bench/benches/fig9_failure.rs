//! Figure 9: HermesKV throughput across an injected node failure
//! (paper §6.6).
//!
//! A 5-node cluster with the reliable-membership service runs at 1%, 5% and
//! 20% writes; one node crashes at t≈150 ms with a conservative 150 ms
//! failure timeout. The paper's shape: throughput collapses almost
//! immediately after the failure (live nodes block on the dead node's
//! ACKs), stays near zero until the timeout expires and the membership is
//! reliably updated (the Paxos agreement itself takes microseconds), then
//! recovers to a slightly lower steady state with four replicas.

use hermes_bench::header;
use hermes_common::{MembershipView, NodeId};
use hermes_core::{HermesNode, ProtocolConfig};
use hermes_membership::RmConfig;
use hermes_replica::{run_sim, SimConfig};
use hermes_sim::SimDuration;
use hermes_workload::WorkloadConfig;

fn main() {
    header(
        "Figure 9: throughput under a node failure [5 nodes, timeout 150ms]",
        "drop to ~0 after crash; recovery after the 150ms timeout; lower steady state",
    );
    let crash_ms = 150u64;
    for ratio in [0.01f64, 0.05, 0.20] {
        let cfg = SimConfig {
            nodes: 5,
            workers_per_node: 8,
            sessions_per_node: 24,
            workload: WorkloadConfig {
                keys: 20_000,
                write_ratio: ratio,
                ..WorkloadConfig::default()
            },
            warmup_ops: 0,
            measured_ops: u64::MAX,
            max_sim_time: Some(SimDuration::millis(600)),
            crash_at: Some((SimDuration::millis(crash_ms), NodeId(4))),
            rm: Some(RmConfig {
                failure_timeout: SimDuration::millis(150),
                lease_duration: SimDuration::millis(40),
                heartbeat_interval: SimDuration::millis(10),
            }),
            timeline_bin: Some(SimDuration::millis(10)),
            mlt: SimDuration::millis(30),
            seed: 42,
            ..SimConfig::default()
        };
        let r = run_sim(&cfg, |id, n| {
            HermesNode::new(id, MembershipView::initial(n), ProtocolConfig::default())
        });

        println!();
        println!("write ratio {:.0}%:", ratio * 100.0);
        println!("{:>8} | {:>12} | trace", "t (ms)", "MReq/s");
        let mut pre = 0.0f64;
        let mut pre_n = 0;
        let mut dip = f64::MAX;
        let mut post = 0.0f64;
        let mut post_n = 0;
        for &(t_s, ops_s) in &r.timeline {
            let t_ms = t_s * 1e3;
            let mreqs = ops_s / 1e6;
            if t_ms < crash_ms as f64 - 10.0 {
                pre += mreqs;
                pre_n += 1;
            } else if t_ms > crash_ms as f64 + 5.0 && t_ms < crash_ms as f64 + 150.0 {
                dip = dip.min(mreqs);
            } else if t_ms > 450.0 {
                post += mreqs;
                post_n += 1;
            }
            // Print a compact trace every 30 ms.
            if (t_ms as u64).is_multiple_of(30) {
                let bar = "#".repeat(((mreqs * 0.5) as usize).min(60));
                println!("{:>8.0} | {:>12.1} | {bar}", t_ms, mreqs);
            }
        }
        let pre_avg = pre / pre_n.max(1) as f64;
        let post_avg = post / post_n.max(1) as f64;
        println!(
            "  pre-crash {:.1} MReq/s; dip {:.1}; recovered {:.1} MReq/s (paper: dip to ~0, recover lower than before)",
            pre_avg, dip, post_avg
        );
        assert!(pre_avg > 0.0, "no pre-crash throughput");
        assert!(
            dip < pre_avg * 0.35,
            "failure must slash throughput (pre {pre_avg:.1}, dip {dip:.1})"
        );
        assert!(
            post_avg > pre_avg * 0.3,
            "throughput must recover after reconfiguration (pre {pre_avg:.1}, post {post_avg:.1})"
        );
    }
    println!();
    println!("figure 9 harness complete");
}
