//! Transport cost, measured not guessed: the identical threaded cluster
//! (3 nodes × 2 workers, pipelined closed-loop sessions) over the
//! in-process channel transport vs. loopback TCP sockets.
//!
//! The paper's testbed pushes replication over RDMA where a send costs
//! ~½ µs; our TCP stand-in pays syscalls, copies and the loopback stack on
//! every frame (DESIGN.md §1, §4). This bench quantifies exactly that gap
//! so transport overhead is a number, not a hand-wave. Expect in-proc to
//! win by a wide margin in ops/s; the interesting outputs are the ratio
//! and the absolute TCP throughput (what a real multi-process deployment
//! of this code would serve on one box).
//!
//! Run: `cargo bench --bench tcp_loopback` (add `-- --smoke` for the
//! CI-sized run; `HERMES_SCALE` scales the op count as elsewhere).

use hermes_bench::{header, scaled_ops};
use hermes_net::TcpNet;
use hermes_replica::{ClusterConfig, ThreadCluster};
use hermes_workload::{run_closed_loop, ClosedLoopConfig, Workload, WorkloadConfig};
use std::sync::Arc;
use std::time::Instant;

const NODES: usize = 3;
const WORKERS: usize = 2;
const SESSIONS: usize = 6;
const DEPTH: usize = 16;

fn drive(cluster: ThreadCluster, per_session: u64) -> (u64, f64) {
    let cluster = Arc::new(cluster);
    let start = Instant::now();
    let joins: Vec<_> = (0..SESSIONS)
        .map(|s| {
            let cluster = Arc::clone(&cluster);
            std::thread::spawn(move || {
                let mut session = cluster.session(s % NODES);
                let mut wl = Workload::new(
                    WorkloadConfig {
                        keys: 4096,
                        write_ratio: 0.2,
                        value_size: 32,
                        ..WorkloadConfig::default()
                    },
                    0xFEED + s as u64,
                );
                run_closed_loop(
                    &mut session,
                    &mut wl,
                    &ClosedLoopConfig {
                        ops: per_session,
                        depth: DEPTH,
                    },
                )
            })
        })
        .collect();
    let mut completed = 0u64;
    for j in joins {
        completed += j.join().expect("session thread").completed;
    }
    let rate = completed as f64 / start.elapsed().as_secs_f64();
    match Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => unreachable!("all session threads joined"),
    }
    (completed, rate)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let total_ops: u64 = if smoke { 1_800 } else { scaled_ops(60_000) };
    let per_session = (total_ops / SESSIONS as u64).max(1);
    let cfg = ClusterConfig {
        nodes: NODES,
        workers_per_node: WORKERS,
        ..ClusterConfig::default()
    };

    header(
        "tcp_loopback: ops/s, in-process channels vs loopback TCP sockets [3 nodes x 2 workers]",
        "same runtime, pluggable transport: the delta is the socket stack \
         standing in for the paper's RDMA NICs (DESIGN.md §4)",
    );
    println!(
        "{:>10} | {:>10} {:>12} | completion",
        "transport", "ops", "ops/s"
    );

    let (completed, inproc_rate) = drive(ThreadCluster::launch(cfg), per_session);
    assert_eq!(completed, per_session * SESSIONS as u64, "in-proc run");
    println!(
        "{:>10} | {completed:>10} {inproc_rate:>12.0} | all ok",
        "in-proc"
    );

    let net = TcpNet::loopback(NODES).expect("bind loopback listeners");
    let (completed, tcp_rate) = drive(ThreadCluster::launch_over(net, cfg), per_session);
    assert_eq!(completed, per_session * SESSIONS as u64, "tcp run");
    println!("{:>10} | {completed:>10} {tcp_rate:>12.0} | all ok", "tcp");

    println!(
        "\ntransport cost: in-proc/tcp = {:.2}x",
        inproc_rate / tcp_rate
    );
}
