//! Figure 6: latency analysis (paper §6.3).
//!
//! (a) median and 99th-percentile latency vs throughput at 5% writes
//!     (uniform): Hermes' tail is the latency of a single-RTT write; rCRAQ's
//!     tail is ≥3.6× higher at matched load (chain traversal); rZAB worse.
//! (b) read/write latencies vs write ratio at rCRAQ-peak load, uniform:
//!     Hermes writes 29–42 µs tight; rCRAQ write medians 101–215 µs,
//!     tails 138–330 µs.
//! (c) same under zipf-0.99: rCRAQ *reads* collapse too (tail-node hotspot,
//!     median up to 112 µs, tail 386 µs); Hermes read tail ≈ its write
//!     median (stall-on-conflict), up to ~120 µs write tail.

use hermes_bench::{header, paper_cluster, run_craq, run_hermes, run_zab, scaled_ops};

fn fig6a() {
    header(
        "Figure 6a: latency vs throughput [uniform, 5% writes, 5 nodes]",
        "Hermes p99 ~69us at peak; rCRAQ p99 42-172us (>=3.6x at matched load)",
    );
    println!(
        "{:>9} | {:>22} {:>22} {:>22}",
        "load", "Hermes p50/p99 (us)", "rCRAQ p50/p99 (us)", "rZAB p50/p99 (us)"
    );
    let mut hermes_peak_p99 = 0.0f64;
    let mut craq_at_match_p99 = 0.0f64;
    for sessions in [20usize, 60, 120, 200] {
        let mut cfg = paper_cluster(5, 0.05, None);
        cfg.sessions_per_node = sessions;
        cfg.measured_ops = scaled_ops(200_000);
        let h = run_hermes(&cfg);
        let c = run_craq(&cfg);
        let z = run_zab(&cfg);
        println!(
            "{:>9} | {:>10.1}/{:>10.1} {:>10.1}/{:>10.1} {:>10.1}/{:>10.1}",
            format!("{sessions}/node"),
            h.all.p50_us(),
            h.all.p99_us(),
            c.all.p50_us(),
            c.all.p99_us(),
            z.all.p50_us(),
            z.all.p99_us(),
        );
        hermes_peak_p99 = h.all.p99_us();
        craq_at_match_p99 = c.all.p99_us();
    }
    assert!(
        craq_at_match_p99 > hermes_peak_p99 * 1.5,
        "rCRAQ tail ({craq_at_match_p99:.1}us) must clearly exceed Hermes ({hermes_peak_p99:.1}us)"
    );
}

fn fig6bc(zipf: Option<f64>, label: &str) {
    header(
        &format!("Figure 6{label}: read/write latency vs write ratio [5 nodes]"),
        "Hermes writes ~1 RTT tight; rCRAQ writes O(n) hops; under skew rCRAQ reads hit the tail",
    );
    println!(
        "{:>7} | {:>25} {:>25} | {:>25} {:>25}",
        "write%",
        "Hermes R p50/p99 (us)",
        "Hermes W p50/p99 (us)",
        "rCRAQ R p50/p99 (us)",
        "rCRAQ W p50/p99 (us)"
    );
    for ratio in [1u32, 5, 20, 50, 75, 100] {
        let mut cfg = paper_cluster(5, ratio as f64 / 100.0, zipf);
        cfg.measured_ops = scaled_ops(200_000);
        // "operating at peak throughput of CRAQ": a moderate fixed load.
        cfg.sessions_per_node = 100;
        let h = run_hermes(&cfg);
        let c = run_craq(&cfg);
        let fmt = |s: &hermes_sim::stats::LatencySummary| {
            if s.count == 0 {
                "        -/-        ".to_string()
            } else {
                format!("{:>10.1}/{:>10.1}", s.p50_us(), s.p99_us())
            }
        };
        println!(
            "{:>7} | {:>25} {:>25} | {:>25} {:>25}",
            ratio,
            fmt(&h.reads),
            fmt(&h.writes),
            fmt(&c.reads),
            fmt(&c.writes),
        );
        if ratio > 1 && ratio < 100 {
            // rCRAQ writes traverse the chain: must be slower than Hermes'.
            assert!(
                c.writes.p50_ns > h.writes.p50_ns,
                "{label}@{ratio}%: rCRAQ write median must exceed Hermes'"
            );
        }
    }
}

fn main() {
    fig6a();
    fig6bc(None, "b");
    fig6bc(Some(0.99), "c");
    println!();
    println!("figure 6 harness complete");
}
