//! Ablation study of the design choices DESIGN.md calls out: the paper's
//! §3.3 optimizations O1 (elide superseded VALs), O2 (virtual node ids) and
//! O3 (broadcast ACKs), plus message-amplification accounting per protocol.
//!
//! Not a paper figure — the paper evaluates HermesKV with O1 only (§5.1) —
//! but quantifies the trade-offs the text argues qualitatively.

use hermes_bench::{
    header, run_abd, run_cr, run_craq, run_hermes_with, run_lockstep, run_zab, scaled_ops,
};
use hermes_core::ProtocolConfig;
use hermes_replica::SimConfig;
use hermes_workload::WorkloadConfig;

fn cfg(write_ratio: f64) -> SimConfig {
    SimConfig {
        nodes: 5,
        workers_per_node: 8,
        sessions_per_node: 48,
        workload: WorkloadConfig {
            keys: 20_000,
            write_ratio,
            ..WorkloadConfig::default()
        },
        warmup_ops: scaled_ops(50_000),
        measured_ops: scaled_ops(150_000),
        seed: 42,
        ..SimConfig::default()
    }
}

fn main() {
    header(
        "Ablation: Hermes protocol optimizations [5 nodes, 20% writes]",
        "O1 saves VAL bandwidth on conflicts; O2 splits conflict wins; O3 trades ACK fanout for read-blocking",
    );
    let c = cfg(0.20);
    let base = ProtocolConfig {
        elide_superseded_val: false,
        virtual_ids_per_node: 1,
        broadcast_acks: false,
        rmw_support: true,
    };
    let variants: Vec<(&str, ProtocolConfig)> = vec![
        ("no optimizations", base),
        (
            "+O1 (elide VALs)",
            ProtocolConfig {
                elide_superseded_val: true,
                ..base
            },
        ),
        (
            "+O1+O2 (4 vids)",
            ProtocolConfig {
                elide_superseded_val: true,
                virtual_ids_per_node: 4,
                ..base
            },
        ),
        (
            "+O1+O3 (bcast ACKs)",
            ProtocolConfig {
                elide_superseded_val: true,
                broadcast_acks: true,
                ..base
            },
        ),
    ];
    println!(
        "{:<22} {:>12} {:>14} {:>14} {:>12}",
        "variant", "MReq/s", "read p99(us)", "write p99(us)", "msgs/op"
    );
    let mut results = Vec::new();
    for (name, pcfg) in variants {
        let r = run_hermes_with(&c, pcfg);
        println!(
            "{:<22} {:>12.1} {:>14.1} {:>14.1} {:>12.2}",
            name,
            r.throughput_mreqs,
            r.reads.p99_us(),
            r.writes.p99_us(),
            r.messages_sent as f64 / r.ops_completed as f64
        );
        results.push((name, r));
    }
    // O3 must eliminate VAL traffic but raise total ACK fanout; on a 5-node
    // group the two nearly cancel: (n-1) VALs saved vs (n-1)(n-2) extra ACKs.
    let base_msgs = results[1].1.messages_sent as f64 / results[1].1.ops_completed as f64;
    let o3_msgs = results[3].1.messages_sent as f64 / results[3].1.ops_completed as f64;
    assert!(
        o3_msgs > base_msgs,
        "O3 increases message count on 5 nodes ({o3_msgs:.2} vs {base_msgs:.2})"
    );

    header(
        "Message amplification per protocol [5 nodes, 20% writes]",
        "messages per op: chain vs broadcast vs quorum vs total order",
    );
    println!("{:<12} {:>12} {:>12}", "protocol", "MReq/s", "msgs/op");
    let h = run_hermes_with(&c, ProtocolConfig::default());
    for (name, r) in [
        ("Hermes", h),
        ("rCRAQ", run_craq(&c)),
        ("rZAB", run_zab(&c)),
        ("CR", run_cr(&c)),
        ("ABD", run_abd(&c)),
        ("lock-step", run_lockstep(&c)),
    ] {
        println!(
            "{:<12} {:>12.1} {:>12.2}",
            name,
            r.throughput_mreqs,
            r.messages_sent as f64 / r.ops_completed as f64
        );
    }
    println!();
    println!("ablation harness complete");
}
