//! Figure 8: Hermes (single worker) vs the Derecho-like lock-step SMR
//! baseline on a write-only workload across object sizes (paper §6.5).
//!
//! The paper limits HermesKV to one thread for fairness against Derecho's
//! limited threading and still measures ~10× higher write throughput at
//! 32 B objects and ~3× at 1 KiB. The shape comes from lock-step delivery:
//! the SMR baseline serializes rounds (all replicas confirm round r before
//! r+1 starts), while Hermes pipelines inter-key concurrent writes.

use hermes_bench::{header, run_hermes, run_lockstep, scaled_ops};
use hermes_replica::SimConfig;
use hermes_workload::WorkloadConfig;

fn cfg(object_size: usize) -> SimConfig {
    SimConfig {
        nodes: 5,
        workers_per_node: 1, // single-threaded, as in the paper
        sessions_per_node: 16,
        workload: WorkloadConfig {
            keys: 10_000,
            write_ratio: 1.0,
            value_size: object_size,
            ..WorkloadConfig::default()
        },
        warmup_ops: scaled_ops(20_000) / 4,
        measured_ops: scaled_ops(80_000) / 4,
        seed: 42,
        ..SimConfig::default()
    }
}

fn main() {
    header(
        "Figure 8: single-thread Hermes vs lock-step SMR, write-only [5 nodes]",
        "paper: ~10x at 32B, ~3x at 1KB (HermesKV vs Derecho)",
    );
    println!(
        "{:>9} | {:>14} {:>14} {:>8}",
        "obj size", "Hermes", "lock-step", "ratio"
    );
    let mut ratios = Vec::new();
    for size in [32usize, 256, 1024] {
        let c = cfg(size);
        let h = run_hermes(&c);
        let l = run_lockstep(&c);
        let ratio = h.throughput_mreqs / l.throughput_mreqs.max(1e-9);
        ratios.push((size, ratio));
        println!(
            "{:>8}B | {:>9.2} MR/s {:>9.2} MR/s {:>7.1}x",
            size, h.throughput_mreqs, l.throughput_mreqs, ratio
        );
        assert!(
            ratio > 1.5,
            "Hermes must clearly beat lock-step SMR at {size}B (got {ratio:.2}x)"
        );
    }
    // The advantage shrinks as objects grow (bandwidth-bound regime).
    let first = ratios.first().expect("sizes measured").1;
    let last = ratios.last().expect("sizes measured").1;
    assert!(
        first > last,
        "advantage should shrink with object size ({first:.1}x -> {last:.1}x)"
    );
    println!();
    println!("figure 8 harness complete");
}
