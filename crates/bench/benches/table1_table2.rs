//! Tables 1 and 2 of the paper: the feature matrix for high-performance
//! replication, and the per-system comparison — derived from each protocol
//! core's self-reported `Capabilities`, not from prose.

use hermes_baselines::{AbdNode, CrNode, CraqNode, LockstepNode, ZabNode};
use hermes_common::{Capabilities, ReplicaProtocol};
use hermes_core::HermesNode;

fn main() {
    println!("=== Table 1: protocol features for high performance (paper §1) ===");
    println!("  reads : local; load-balanced (any replica serves)");
    println!("  writes: decentralized; inter-key concurrent; fast (few RTTs)");

    println!();
    println!("=== Table 2: read/write features of the evaluated systems ===");
    let rows: Vec<Capabilities> = vec![
        HermesNode::capabilities(),
        CraqNode::capabilities(),
        ZabNode::capabilities(),
        LockstepNode::capabilities(),
        CrNode::capabilities(),
        AbdNode::capabilities(),
    ];
    println!(
        "{:<28} {:>11} {:>11} {:>6} {:>16} {:>22} {:>5}",
        "system", "local reads", "leases", "cons.", "write conc.", "write lat. (RTT)", "dec."
    );
    for c in rows {
        println!(
            "{:<28} {:>11} {:>11} {:>6} {:>16} {:>22} {:>5}",
            c.name,
            if c.local_reads { "yes" } else { "no" },
            c.leases,
            c.consistency,
            c.write_concurrency,
            c.write_latency_rtts,
            if c.decentralized_writes { "yes" } else { "no" },
        );
    }
    println!();
    println!("paper Table 2 rows (for comparison):");
    println!("  HermesKV : local reads, one lease per RM, Lin, inter-key, 1 RTT, decentralized");
    println!("  rCRAQ    : local reads, one lease per RM, Lin, inter-key, O(n) RTT, not dec.");
    println!("  rZAB     : local reads, no leases, SC, serializes all, 2 RTT, not dec.");
    println!("  Derecho  : local reads, no leases, SC, serializes all, 1 RTT (lock-step), dec.");
}
