//! Figure 5: throughput vs write ratio for HermesKV, rCRAQ and rZAB on a
//! 5-node group — (a) uniform, (b) zipfian 0.99 (paper §6.1–6.2).
//!
//! Paper anchors (MReq/s): read-only 985 (uniform) / 4183 (skewed), all
//! systems identical; at 1% writes Hermes 770 (12% over rCRAQ, 4.5× over
//! rZAB's 172); at 20% Hermes leads rCRAQ by ~40% and rZAB by 3.4×; at 100%
//! Hermes 72, rZAB 16. Shapes to reproduce: Hermes ≥ rCRAQ ≥ rZAB at every
//! ratio, gaps widening with the write ratio.

use hermes_bench::{header, paper_cluster, run_craq, run_hermes, run_zab};

fn sweep(zipf: Option<f64>, label: &str, paper_rows: &[(u32, &str, &str, &str)]) {
    header(
        &format!("Figure 5{label}: throughput vs write ratio [5 nodes]"),
        "Hermes >= rCRAQ >= rZAB at every ratio; see anchors per row",
    );
    println!(
        "{:>7} | {:>16} {:>16} {:>16} | paper (Hermes, rCRAQ, rZAB)",
        "write%", "Hermes", "rCRAQ", "rZAB"
    );
    for &(ratio_pct, ph, pc, pz) in paper_rows {
        let cfg = paper_cluster(5, ratio_pct as f64 / 100.0, zipf);
        let h = run_hermes(&cfg);
        let c = run_craq(&cfg);
        let z = run_zab(&cfg);
        println!(
            "{:>7} | {:>10.1} MR/s {:>10.1} MR/s {:>10.1} MR/s | ({ph}, {pc}, {pz})",
            ratio_pct, h.throughput_mreqs, c.throughput_mreqs, z.throughput_mreqs
        );
        // Uniform access ("a"): strict Hermes >= rCRAQ at every ratio, as
        // in the paper. Under skew ("b") the simulated substrate diverges
        // from the paper's testbed at high write ratios: our rCRAQ
        // pipelines same-key writes down the chain while Hermes serializes
        // same-key writes at 1 RTT per coordinator, and the compensating
        // tail-node collapse needs per-query costs this calibration does
        // not produce — see EXPERIMENTS.md ("Known divergence"). Assert
        // the paper's ordering where the substrate supports it.
        let craq_margin = match (label, ratio_pct) {
            ("a", _) => 0.98,
            ("b", 0..=1) => 0.70,
            ("b", 2..=9) => 0.95,
            _ => 0.0, // high-ratio skew: report, don't assert (documented)
        };
        assert!(
            h.throughput_mreqs >= c.throughput_mreqs * craq_margin,
            "{label}@{ratio_pct}%: Hermes ({:.1}) must not lose to rCRAQ ({:.1})",
            h.throughput_mreqs,
            c.throughput_mreqs
        );
        assert!(
            h.throughput_mreqs > z.throughput_mreqs,
            "{label}@{ratio_pct}%: Hermes ({:.1}) must beat rZAB ({:.1})",
            h.throughput_mreqs,
            z.throughput_mreqs
        );
    }
}

fn read_only(zipf: Option<f64>, label: &str, paper: &str) {
    let cfg = paper_cluster(5, 0.0, zipf);
    let h = run_hermes(&cfg);
    let c = run_craq(&cfg);
    let z = run_zab(&cfg);
    println!();
    println!(
        "read-only {label}: Hermes {:.1}, rCRAQ {:.1}, rZAB {:.1} MReq/s (paper: all {paper})",
        h.throughput_mreqs, c.throughput_mreqs, z.throughput_mreqs
    );
    let spread = (h.throughput_mreqs - z.throughput_mreqs).abs() / h.throughput_mreqs;
    assert!(
        spread < 0.05,
        "read-only throughput must be identical across systems (spread {spread:.3})"
    );
}

fn main() {
    // Figure 5a: uniform.
    sweep(
        None,
        "a",
        &[
            (1, "770", "~690", "172"),
            (5, "—", "—", "—"),
            (20, "—", "—", "—"),
            (50, "—", "—", "—"),
            (75, "—", "—", "—"),
            (100, "72", "—", "16"),
        ],
    );
    read_only(None, "uniform", "985 MReq/s");

    // Figure 5b: zipfian 0.99.
    sweep(
        Some(0.99),
        "b",
        &[
            (1, "1190", "—", "—"),
            (5, "—", "—", "—"),
            (20, "—", "—", "—"),
            (50, "—", "—", "—"),
            (75, "—", "—", "—"),
            (100, "—", "—", "—"),
        ],
    );
    read_only(Some(0.99), "zipf-0.99", "4183 MReq/s");

    println!();
    println!("figure 5 harness complete");
}
