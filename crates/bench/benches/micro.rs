//! Criterion micro-benchmarks of the substrates: the per-operation costs
//! that the simulator's cost model abstracts (DESIGN.md §1).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hermes_common::{ClientOp, Key, MembershipView, NodeId, NodeSet, OpId, Value};
use hermes_core::{HermesNode, Msg, ProtocolConfig, Ts, UpdateKind};
use hermes_sim::rng::Rng;
use hermes_sim::stats::Histogram;
use hermes_store::{SlotMeta, Store, StoreConfig};
use hermes_wings::{codec, Batcher};
use hermes_workload::Zipfian;
use std::hint::black_box;

fn bench_timestamps(c: &mut Criterion) {
    c.bench_function("ts/compare", |b| {
        let x = Ts::new(123456, 3);
        let y = Ts::new(123456, 4);
        b.iter(|| black_box(black_box(x) < black_box(y)));
    });
}

fn bench_nodeset(c: &mut Criterion) {
    c.bench_function("nodeset/superset_check", |b| {
        let required = NodeSet::first_n(7).without(NodeId(3));
        let acks = NodeSet::first_n(7);
        b.iter(|| black_box(black_box(acks).is_superset(black_box(required))));
    });
}

fn bench_kernel_write_path(c: &mut Criterion) {
    // Full 5-replica write: coordinator CINV + 4×FINV + 4×CACK + 4×FVAL,
    // the protocol-CPU component of one Hermes write.
    c.bench_function("kernel/write_5replicas_full_round", |b| {
        let view = MembershipView::initial(5);
        let cfg = ProtocolConfig::default();
        b.iter_batched(
            || {
                let nodes: Vec<HermesNode> = (0..5)
                    .map(|i| HermesNode::new(NodeId(i), view, cfg))
                    .collect();
                nodes
            },
            |mut nodes| {
                let mut fx = Vec::new();
                nodes[0].on_client_op(
                    OpId::default(),
                    Key(1),
                    ClientOp::Write(Value::from_u64(9)),
                    &mut fx,
                );
                let inv = fx
                    .iter()
                    .find_map(|e| match e {
                        hermes_common::Effect::Broadcast { msg } => Some(msg.clone()),
                        _ => None,
                    })
                    .expect("INV broadcast");
                let mut acks = Vec::new();
                for f in 1..5u32 {
                    let mut ffx = Vec::new();
                    nodes[f as usize].on_message(NodeId(0), inv.clone(), &mut ffx);
                    for e in ffx {
                        if let hermes_common::Effect::Send { msg, .. } = e {
                            acks.push((f, msg));
                        }
                    }
                }
                let mut val = None;
                for (f, ack) in acks {
                    let mut cfx = Vec::new();
                    nodes[0].on_message(NodeId(f), ack, &mut cfx);
                    for e in cfx {
                        if let hermes_common::Effect::Broadcast { msg } = e {
                            val = Some(msg);
                        }
                    }
                }
                if let Some(val) = val {
                    for follower in nodes.iter_mut().skip(1) {
                        let mut vfx = Vec::new();
                        follower.on_message(NodeId(0), val.clone(), &mut vfx);
                    }
                }
                black_box(nodes)
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("kernel/local_read", |b| {
        let view = MembershipView::initial(5);
        let mut node = HermesNode::new(NodeId(0), view, ProtocolConfig::default());
        let mut fx = Vec::new();
        node.on_client_op(
            OpId::default(),
            Key(1),
            ClientOp::Write(Value::from_u64(1)),
            &mut fx,
        );
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            node.on_client_op(OpId::default(), Key(1), ClientOp::Read, &mut out);
            black_box(&out);
        });
    });
}

fn bench_store(c: &mut Criterion) {
    let store = Store::new(StoreConfig::default());
    store.put(Key(7), SlotMeta::valid(1, 0), &[0xAB; 32]);
    let mut buf = Vec::with_capacity(64);
    c.bench_function("store/seqlock_get_32B", |b| {
        b.iter(|| {
            black_box(store.get(black_box(Key(7)), &mut buf));
        });
    });
    c.bench_function("store/seqlock_put_32B", |b| {
        let payload = [0xCD; 32];
        let mut v = 0u64;
        b.iter(|| {
            v += 1;
            store.put(Key(7), SlotMeta::valid(v, 0), &payload);
        });
    });
}

fn bench_codec_and_batching(c: &mut Criterion) {
    let inv = Msg::Inv {
        key: Key(42),
        ts: Ts::new(9, 2),
        value: Value::filled(7, 32),
        kind: UpdateKind::Write,
        epoch: hermes_common::Epoch(1),
    };
    c.bench_function("wings/encode_inv_32B", |b| {
        b.iter(|| black_box(codec::encode(black_box(&inv))));
    });
    let encoded = codec::encode(&inv);
    c.bench_function("wings/decode_inv_32B", |b| {
        b.iter(|| black_box(codec::decode(black_box(&encoded)).unwrap()));
    });
    c.bench_function("wings/batch_16_msgs", |b| {
        b.iter_batched(
            || Batcher::new(4096, 64),
            |mut batcher| {
                for _ in 0..16 {
                    batcher.push(NodeId(1), &encoded);
                }
                black_box(batcher.flush_all())
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_workload(c: &mut Criterion) {
    let zipf = Zipfian::new(1_000_000, 0.99);
    let mut rng = Rng::seeded(1);
    c.bench_function("workload/zipfian_sample", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)));
    });
    c.bench_function("rng/xoshiro_next", |b| {
        b.iter(|| black_box(rng.next_u64()));
    });
}

fn bench_stats(c: &mut Criterion) {
    c.bench_function("stats/histogram_record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(v >> 40);
        });
    });
}

criterion_group!(
    benches,
    bench_timestamps,
    bench_nodeset,
    bench_kernel_write_path,
    bench_store,
    bench_codec_and_batching,
    bench_workload,
    bench_stats
);
criterion_main!(benches);
