//! Throughput scaling of the real-threads sharded runtime: ops/s at
//! W ∈ {1, 2, 4, 8} worker shards per node.
//!
//! The paper's headline scalability claim is inter-key concurrency: Hermes
//! has no serialization point, so throughput grows with worker threads
//! (§2.3, §5.1.1, Figure 7 measures it to 36 workers on the testbed). This
//! bench drives the *real* threaded runtime — pipelined client sessions
//! against `ThreadCluster` — rather than the simulator, so it measures this
//! host's actual thread scaling, not the calibrated model. Absolute numbers
//! are host-dependent; the shape to look for is ops/s not collapsing (and
//! usually growing) as W rises.
//!
//! Run: `cargo bench --bench threaded_scaling` (add `-- --smoke` for the
//! CI-sized run; `HERMES_SCALE` scales the op count as elsewhere).

use hermes_bench::{header, scaled_ops};
use hermes_replica::{ClusterConfig, ThreadCluster};
use hermes_workload::{run_closed_loop, ClosedLoopConfig, Workload, WorkloadConfig};
use std::sync::Arc;
use std::time::Instant;

const NODES: usize = 3;
const SESSIONS: usize = 6;
const DEPTH: usize = 16;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let total_ops: u64 = if smoke { 1_800 } else { scaled_ops(60_000) };
    let per_session = (total_ops / SESSIONS as u64).max(1);

    header(
        "threaded_scaling: real-threads ops/s vs workers per node [3 nodes]",
        "inter-key concurrency: no serialization point, so throughput scales \
         with workers (paper §5.1.1)",
    );
    println!(
        "{:>8} | {:>10} {:>10} {:>12} | completion",
        "workers", "ops", "elapsed", "ops/s"
    );

    for &workers in &[1usize, 2, 4, 8] {
        let cluster = Arc::new(ThreadCluster::launch(ClusterConfig {
            nodes: NODES,
            workers_per_node: workers,
            ..ClusterConfig::default()
        }));
        let start = Instant::now();
        let joins: Vec<_> = (0..SESSIONS)
            .map(|s| {
                let cluster = Arc::clone(&cluster);
                std::thread::spawn(move || {
                    let mut session = cluster.session(s % NODES);
                    let mut wl = Workload::new(
                        WorkloadConfig {
                            keys: 4096,
                            write_ratio: 0.2,
                            value_size: 32,
                            ..WorkloadConfig::default()
                        },
                        0xC0FFEE + s as u64,
                    );
                    run_closed_loop(
                        &mut session,
                        &mut wl,
                        &ClosedLoopConfig {
                            ops: per_session,
                            depth: DEPTH,
                        },
                    )
                })
            })
            .collect();
        let mut completed = 0u64;
        let mut ok = 0u64;
        for j in joins {
            let report = j.join().expect("session thread");
            completed += report.completed;
            ok += report.ok;
        }
        let elapsed = start.elapsed();
        let rate = completed as f64 / elapsed.as_secs_f64();
        println!(
            "{workers:>8} | {completed:>10} {:>9.2?} {rate:>12.0} | {ok} ok / {} submitted",
            elapsed,
            per_session * SESSIONS as u64,
        );
        assert_eq!(
            completed,
            per_session * SESSIONS as u64,
            "every submitted op must complete at W={workers}"
        );
        match Arc::try_unwrap(cluster) {
            Ok(c) => c.shutdown(),
            Err(_) => unreachable!("all session threads joined"),
        }
    }
}
