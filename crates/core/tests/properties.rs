//! Property-based tests: randomized operation mixes, delivery orders and
//! fault schedules must always converge with per-key replica agreement, and
//! every surviving client operation must complete exactly once.

mod support;

use hermes_common::{Key, Reply, RmwOp, Value};
use hermes_core::ProtocolConfig;
use proptest::prelude::*;
use support::Cluster;

#[derive(Clone, Debug)]
enum Action {
    Write { node: usize, key: u8, val: u64 },
    Rmw { node: usize, key: u8, delta: u64 },
    Read { node: usize, key: u8 },
    DeliverSome { count: u8 },
    DropOne { nth: u8 },
    DuplicateOne { nth: u8 },
    FireTimers,
}

fn action_strategy(n_nodes: usize) -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0..n_nodes, 0u8..4, 0u64..100).prop_map(|(node, key, val)| Action::Write { node, key, val }),
        2 => (0..n_nodes, 0u8..4, 1u64..10).prop_map(|(node, key, delta)| Action::Rmw { node, key, delta }),
        3 => (0..n_nodes, 0u8..4).prop_map(|(node, key)| Action::Read { node, key }),
        4 => (1u8..8).prop_map(|count| Action::DeliverSome { count }),
        1 => (0u8..16).prop_map(|nth| Action::DropOne { nth }),
        1 => (0u8..16).prop_map(|nth| Action::DuplicateOne { nth }),
        2 => Just(Action::FireTimers),
    ]
}

fn run_schedule(n_nodes: usize, cfg: ProtocolConfig, actions: &[Action]) {
    let mut c = Cluster::new(n_nodes, cfg);
    let mut issued = Vec::new();
    for action in actions {
        match action.clone() {
            Action::Write { node, key, val } => {
                issued.push(c.write(node, Key(key as u64), Value::from_u64(val)));
            }
            Action::Rmw { node, key, delta } => {
                issued.push(c.rmw(node, Key(key as u64), RmwOp::FetchAdd { delta }));
            }
            Action::Read { node, key } => {
                issued.push(c.read(node, Key(key as u64)));
            }
            Action::DeliverSome { count } => {
                for _ in 0..count {
                    if !c.deliver_one() {
                        break;
                    }
                }
            }
            Action::DropOne { nth } => {
                let len = c.inflight.len();
                if len > 0 {
                    let idx = nth as usize % len;
                    let mut i = 0;
                    c.drop_matching(|_| {
                        let hit = i == idx;
                        i += 1;
                        hit
                    });
                }
            }
            Action::DuplicateOne { nth } => {
                let len = c.inflight.len();
                if len > 0 {
                    let idx = nth as usize % len;
                    let mut i = 0;
                    c.duplicate_matching(|_| {
                        let hit = i == idx;
                        i += 1;
                        hit
                    });
                }
            }
            Action::FireTimers => c.fire_all_timers(),
        }
    }
    // Drive the system to quiescence: deliver everything, fire timers.
    c.quiesce();
    // Replays are request-driven (paper §3.2): a key whose VAL was lost
    // stays lazily Invalid until the next request. Force recovery by
    // reading every key at every node, then re-quiesce.
    for key in 0..4u64 {
        for node in 0..n_nodes {
            issued.push(c.read(node, Key(key)));
        }
    }
    c.quiesce();

    // Invariant 1: every issued operation completed with exactly one reply.
    for op in &issued {
        let replies = c.replies.iter().filter(|(o, _)| o == op).count();
        assert_eq!(replies, 1, "operation {op} completed {replies} times");
    }
    // Invariant 2: per-key convergence — all replicas Valid and agreeing.
    for key in 0..4u64 {
        c.assert_converged(Key(key));
    }
    // Invariant 3: committed RMW count matches the final counter value for
    // RMW-only keys is checked in dedicated tests; here we check that no
    // reply signals a protocol fault.
    for (_, r) in &c.replies {
        assert!(
            matches!(
                r,
                Reply::ReadOk(_)
                    | Reply::WriteOk
                    | Reply::RmwOk { .. }
                    | Reply::CasFailed { .. }
                    | Reply::RmwAborted
            ),
            "unexpected reply {r:?} in fault-free run"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn random_schedules_converge_default_config(
        actions in proptest::collection::vec(action_strategy(3), 1..60)
    ) {
        run_schedule(3, ProtocolConfig::default(), &actions);
    }

    #[test]
    fn random_schedules_converge_o3(
        actions in proptest::collection::vec(action_strategy(3), 1..60)
    ) {
        let cfg = ProtocolConfig { broadcast_acks: true, ..ProtocolConfig::default() };
        run_schedule(3, cfg, &actions);
    }

    #[test]
    fn random_schedules_converge_five_nodes_virtual_ids(
        actions in proptest::collection::vec(action_strategy(5), 1..40)
    ) {
        let cfg = ProtocolConfig { virtual_ids_per_node: 3, ..ProtocolConfig::default() };
        run_schedule(5, cfg, &actions);
    }

    #[test]
    fn fetch_add_total_matches_committed_rmws(
        deltas in proptest::collection::vec((0usize..3, 1u64..5), 1..20)
    ) {
        // Sequential RMWs (deliver_all between ops): every RMW commits, and
        // the final counter equals the sum of deltas.
        let mut c = Cluster::new(3, ProtocolConfig::default());
        c.write(0, Key(0), Value::from_u64(0));
        c.deliver_all();
        let mut sum = 0u64;
        for (node, delta) in deltas {
            let op = c.rmw(node, Key(0), RmwOp::FetchAdd { delta });
            c.deliver_all();
            let committed = matches!(c.reply_of(op), Some(Reply::RmwOk { .. }));
            prop_assert!(committed);
            sum += delta;
        }
        prop_assert_eq!(c.node(0).key_value(Key(0)), Value::from_u64(sum));
    }
}
