//! The paper's §3.3 protocol optimizations: O1 (elide superseded VALs),
//! O2 (virtual node ids for fairness), O3 (broadcast ACKs to cut follower
//! read-blocking latency and drop VALs entirely).

mod support;

use hermes_common::{Key, Reply, Value};
use hermes_core::{KeyState, ProtocolConfig};
use support::Cluster;

const K: Key = Key(11);

fn v(n: u64) -> Value {
    Value::from_u64(n)
}

fn o3_config() -> ProtocolConfig {
    ProtocolConfig {
        broadcast_acks: true,
        ..ProtocolConfig::default()
    }
}

// ---------------------------------------------------------------- O1 ----

#[test]
fn o1_elides_val_for_superseded_write() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, K, v(1));
    c.write(2, K, v(3)); // higher cid: supersedes node 0's write
    c.deliver_all();
    c.quiesce();
    c.assert_converged(K);
    // Node 0 went through Trans; with O1 on (default) it sent no VALs.
    assert_eq!(c.node(0).stats().vals_sent, 0);
    assert_eq!(c.node(2).stats().vals_sent, 2);
}

#[test]
fn o1_disabled_sends_redundant_vals_harmlessly() {
    let cfg = ProtocolConfig {
        elide_superseded_val: false,
        ..ProtocolConfig::default()
    };
    let mut c = Cluster::new(3, cfg);
    c.write(0, K, v(1));
    c.write(2, K, v(3));
    c.deliver_all();
    c.quiesce();
    c.assert_converged(K);
    // Without O1 the superseded coordinator also broadcast VALs; they carry
    // a stale ts and are ignored, but cost bandwidth.
    assert_eq!(c.node(0).stats().vals_sent, 2);
    assert_eq!(c.node(0).key_value(K), v(3));
}

// ---------------------------------------------------------------- O2 ----

#[test]
fn o2_virtual_ids_rotate_and_stay_unique_per_node() {
    let cfg = ProtocolConfig {
        virtual_ids_per_node: 4,
        ..ProtocolConfig::default()
    };
    let mut c = Cluster::new(3, cfg);
    let mut seen_cids = std::collections::BTreeSet::new();
    for i in 0..8 {
        c.write(0, Key(100 + i), v(i));
        c.deliver_all();
        seen_cids.insert(c.node(0).key_ts(Key(100 + i)).cid);
    }
    // Node 0 cycled through its 4 virtual ids: {0, 64, 128, 192}.
    assert_eq!(
        seen_cids.into_iter().collect::<Vec<_>>(),
        vec![0, 64, 128, 192]
    );
}

#[test]
fn o2_lets_low_id_nodes_win_some_conflicts() {
    // Without O2, node 0 loses every same-version conflict against node 1.
    // With 4 virtual ids, node 0 sometimes carries a higher cid.
    let cfg = ProtocolConfig {
        virtual_ids_per_node: 4,
        ..ProtocolConfig::default()
    };
    let mut node0_wins = 0;
    for round in 0..4u64 {
        let mut c = Cluster::new(2, cfg);
        // Align node 0's vid rotation to the round (different vid per run).
        for _ in 0..round {
            c.write(0, Key(999), v(0));
            c.deliver_all();
        }
        let k = Key(round);
        c.write(0, k, v(100));
        c.write(1, k, v(200));
        c.deliver_all();
        c.quiesce();
        c.assert_converged(k);
        if c.node(0).key_value(k) == v(100) {
            node0_wins += 1;
        }
    }
    assert!(
        (1..4).contains(&node0_wins),
        "O2 should split conflict wins, node0 won {node0_wins}/4"
    );
}

#[test]
fn o2_ids_never_collide_across_nodes() {
    let cfg = ProtocolConfig {
        virtual_ids_per_node: 8,
        ..ProtocolConfig::default()
    };
    // vid sets are {i + 64k}: node index recoverable as cid % 64.
    let mut c = Cluster::new(5, cfg);
    for i in 0..40 {
        let node = i % 5;
        c.write(node, Key(i as u64), v(0));
        c.deliver_all();
        let cid = c.node(node).key_ts(Key(i as u64)).cid;
        assert_eq!(cid % 64, node as u32, "cid {cid} not owned by node {node}");
    }
}

// ---------------------------------------------------------------- O3 ----

#[test]
fn o3_sends_no_vals_at_all() {
    let mut c = Cluster::new(5, o3_config());
    let w = c.write(0, K, v(9));
    c.deliver_all();
    c.assert_reply(w, Reply::WriteOk);
    c.quiesce();
    for i in 0..5 {
        assert_eq!(
            c.node(i).stats().vals_sent,
            0,
            "node {i} sent a VAL under O3"
        );
        assert_eq!(c.node(i).key_state(K), KeyState::Valid);
        assert_eq!(c.node(i).key_value(K), v(9));
    }
}

#[test]
fn o3_follower_serves_reads_after_acks_without_val() {
    let mut c = Cluster::new(3, o3_config());
    c.write(0, K, v(5));
    // Deliver INVs; followers broadcast ACKs.
    c.deliver_matching(|e| e.msg.kind_name() == "INV");
    assert_eq!(c.node(1).key_state(K), KeyState::Invalid);
    let r = c.read(1, K);
    assert!(c.reply_of(r).is_none());
    // Deliver only the ACK traffic between the followers (1 <-> 2), not to
    // the coordinator: node 1 then knows every other replica has the value.
    c.deliver_matching(|e| e.msg.kind_name() == "ACK" && e.to.0 != 0);
    assert_eq!(c.node(1).key_state(K), KeyState::Valid);
    c.assert_reply(r, Reply::ReadOk(v(5)));
    // The coordinator still hasn't committed (its ACKs weren't delivered).
    assert_eq!(c.node(0).key_state(K), KeyState::Write);
    c.deliver_all();
    c.quiesce();
    c.assert_converged(K);
}

#[test]
fn o3_ack_fanout_increases_but_vals_vanish() {
    let mut base = Cluster::new(5, ProtocolConfig::default());
    base.write(0, K, v(1));
    base.deliver_all();
    let base_acks: u64 = (0..5).map(|i| base.node(i).stats().acks_sent).sum();
    let base_vals: u64 = (0..5).map(|i| base.node(i).stats().vals_sent).sum();

    let mut o3 = Cluster::new(5, o3_config());
    o3.write(0, K, v(1));
    o3.deliver_all();
    let o3_acks: u64 = (0..5).map(|i| o3.node(i).stats().acks_sent).sum();
    let o3_vals: u64 = (0..5).map(|i| o3.node(i).stats().vals_sent).sum();

    assert_eq!(base_acks, 4);
    assert_eq!(base_vals, 4);
    assert_eq!(o3_acks, 16, "each of 4 followers broadcasts to 4 peers");
    assert_eq!(o3_vals, 0);
}

#[test]
fn o3_handles_ack_before_inv_reordering() {
    let mut c = Cluster::new(3, o3_config());
    c.write(0, K, v(7));
    // Deliver node 2's INV and its broadcast ACKs *before* node 1 sees the
    // INV: node 1 buffers the ACK for the yet-unknown timestamp.
    c.deliver_matching(|e| e.to.0 == 2 && e.msg.kind_name() == "INV");
    c.deliver_matching(|e| e.from.0 == 2 && e.to.0 == 1 && e.msg.kind_name() == "ACK");
    assert_eq!(c.node(1).key_state(K), KeyState::Valid, "INV not yet seen");
    // Now the INV arrives; node 1 only needs node 2's (already-seen) ACK.
    c.deliver_matching(|e| e.to.0 == 1 && e.msg.kind_name() == "INV");
    assert_eq!(
        c.node(1).key_state(K),
        KeyState::Valid,
        "buffered ACK must count after INV arrives"
    );
    assert_eq!(c.node(1).key_value(K), v(7));
    c.deliver_all();
    c.quiesce();
    c.assert_converged(K);
}

#[test]
fn o3_concurrent_writes_converge() {
    let mut c = Cluster::new(5, o3_config());
    let ops: Vec<_> = (0..5).map(|i| c.write(i, K, v(i as u64))).collect();
    c.deliver_all();
    c.quiesce();
    for op in ops {
        c.assert_reply(op, Reply::WriteOk);
    }
    c.assert_converged(K);
    assert_eq!(c.node(0).key_value(K), v(4));
}

#[test]
fn o3_with_replay_after_coordinator_crash() {
    let mut c = Cluster::new(3, o3_config());
    c.write(0, K, v(8));
    // Only node 1 sees the INV; coordinator dies.
    c.deliver_matching(|e| e.to.0 == 1 && e.msg.kind_name() == "INV");
    c.crash(0);
    c.reconfigure(c.node(1).view().without_node(hermes_common::NodeId(0)));
    let r = c.read(1, K);
    c.fire_timer(1, K);
    c.deliver_all();
    c.quiesce();
    c.assert_reply(r, Reply::ReadOk(v(8)));
    c.assert_converged(K);
}

#[test]
fn all_optimizations_together() {
    let cfg = ProtocolConfig {
        rmw_support: true,
        elide_superseded_val: true,
        virtual_ids_per_node: 4,
        broadcast_acks: true,
    };
    let mut c = Cluster::new(5, cfg);
    let ops: Vec<_> = (0..5)
        .map(|i| c.write(i, Key(i as u64 % 2), v(i as u64)))
        .collect();
    c.deliver_all();
    c.quiesce();
    for op in ops {
        c.assert_reply(op, Reply::WriteOk);
    }
    c.assert_converged(Key(0));
    c.assert_converged(Key(1));
}
