//! The "advisory abort" corner found by model checking this implementation
//! (documented in EXPERIMENTS.md): a spurious replay can commit an RMW whose
//! coordinator already reported `RmwAborted`. The paper's §3.6 guarantee —
//! at most one of any set of concurrent RMWs commits — still holds; what is
//! *not* guaranteed is that an aborted reply implies no effect. This test
//! constructs the exact schedule and pins the resulting behaviour so any
//! change to it is deliberate.

mod support;

use hermes_common::{Key, Reply, RmwOp, Value};
use hermes_core::{KeyState, ProtocolConfig};
use support::Cluster;

const K: Key = Key(1);

fn v(n: u64) -> Value {
    Value::from_u64(n)
}

#[test]
fn aborted_rmw_can_be_resurrected_by_spurious_replay() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, K, v(5));
    c.deliver_all();

    // Node 0 issues an RMW (+1); its INV reaches node 1 only.
    let rmw = c.rmw(0, K, RmwOp::FetchAdd { delta: 1 });
    c.deliver_matching(|e| e.to.0 == 1 && e.msg.kind_name() == "INV");
    assert_eq!(c.node(1).key_state(K), KeyState::Invalid);
    assert_eq!(c.node(1).key_value(K), v(6));

    // Node 1's reader stalls and its mlt fires *early* (spurious replay —
    // the paper allows this: "a write replay will never compromise the
    // safety of the protocol", §3.4).
    let r1 = c.read(1, K);
    assert!(c.reply_of(r1).is_none());
    c.fire_timer(1, K);
    assert_eq!(c.node(1).key_state(K), KeyState::Replay);

    // The replay runs to completion: its INVs reach node 2 (which never
    // saw the original RMW INV) and node 0 (equal timestamp: duplicate
    // ACK); the ACKs return to node 1, which commits, validates and serves
    // the stalled read with the RMW's value. The RMW has now COMMITTED —
    // but its coordinator (node 0) still waits for its own ACKs.
    c.deliver_matching(|e| e.from.0 == 1 && e.msg.kind_name() == "INV");
    assert_eq!(c.node(2).key_value(K), v(6));
    c.deliver_matching(|e| e.to.0 == 1 && e.msg.kind_name() == "ACK");
    c.assert_reply(r1, Reply::ReadOk(v(6)));
    c.deliver_matching(|e| e.from.0 == 1 && e.msg.kind_name() == "VAL");

    // Node 2 (validated at the RMW's value) now issues a write; its higher
    // timestamp reaches the RMW's original coordinator, whose pending RMW
    // is still waiting for ACKs: CRMW-abort fires and the client is told
    // the RMW aborted — even though its effect was already read above.
    let wr = c.write(2, K, v(100));
    c.deliver_matching(|e| e.from.0 == 2 && e.to.0 == 0 && e.msg.kind_name() == "INV");
    c.assert_reply(rmw, Reply::RmwAborted);

    // Everything still converges, and the *write* (higher timestamp) wins
    // the final state — the §3.6 invariant (one concurrent update order)
    // is intact. Only the abort reply was advisory.
    c.deliver_all();
    c.quiesce();
    c.assert_reply(wr, Reply::WriteOk);
    c.assert_converged(K);
    assert_eq!(c.node(0).key_value(K), v(100));
}

#[test]
fn without_replays_aborts_are_final() {
    // The complementary guarantee: if no replay races the abort (no timer
    // fires), an aborted RMW's value is never observed anywhere.
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, K, v(5));
    c.deliver_all();

    let rmw = c.rmw(0, K, RmwOp::FetchAdd { delta: 1 });
    let wr = c.write(2, K, v(100));
    c.deliver_all();
    c.quiesce();
    c.assert_reply(rmw, Reply::RmwAborted);
    c.assert_reply(wr, Reply::WriteOk);
    c.assert_converged(K);
    assert_eq!(c.node(1).key_value(K), v(100), "aborted RMW value leaked");
    // No replica ever served 6: all read replies in the history are 5/100.
    for (_, reply) in &c.replies {
        if let Reply::ReadOk(val) = reply {
            assert_ne!(val, &v(6), "aborted value observed without a replay");
        }
    }
}
