//! Conflicting-write behaviour: concurrent writes never abort, linearize by
//! timestamp, and the Trans state handles superseded coordinators
//! (paper §3.1, §3.5 and Figure 4).

mod support;

use hermes_common::{Key, Reply, Value};
use hermes_core::{KeyState, ProtocolConfig, Ts};
use support::Cluster;

const A: Key = Key(1);

fn v(n: u64) -> Value {
    Value::from_u64(n)
}

/// The exact operational example of paper Figure 4 (nodes renumbered 0-2):
/// concurrent writes A=1 (node 0) and A=3 (node 2), a stalled read on node
/// 1, then a VAL loss plus coordinator crash resolved by a write replay.
#[test]
fn figure4_operational_example() {
    let mut c = Cluster::new(3, ProtocolConfig::default());

    // Node 0 initiates write(A=1); node 2 initiates concurrent write(A=3).
    let w1 = c.write(0, A, v(1));
    let w3 = c.write(2, A, v(3));
    assert_eq!(c.node(0).key_state(A), KeyState::Write);
    assert_eq!(c.node(2).key_state(A), KeyState::Write);
    // Same version, different cid: node 2's timestamp is higher.
    let ts1 = c.node(0).key_ts(A);
    let ts3 = c.node(2).key_ts(A);
    assert_eq!(ts1, Ts::new(2, 0));
    assert_eq!(ts3, Ts::new(2, 2));
    assert!(ts3 > ts1);

    // Node 1 ACKs the INV from node 0: adopts value 1, goes Invalid.
    c.deliver_matching(|e| e.from.0 == 0 && e.to.0 == 1 && e.msg.kind_name() == "INV");
    assert_eq!(c.node(1).key_state(A), KeyState::Invalid);
    assert_eq!(c.node(1).key_value(A), v(1));
    assert_eq!(c.node(1).key_ts(A), ts1);

    // Node 2 ACKs node 0's INV but keeps its own higher-timestamped state.
    c.deliver_matching(|e| e.from.0 == 0 && e.to.0 == 2 && e.msg.kind_name() == "INV");
    assert_eq!(c.node(2).key_state(A), KeyState::Write);
    assert_eq!(c.node(2).key_value(A), v(3));

    // Node 1 receives node 2's INV: higher timestamp, adopt value 3,
    // remain Invalid.
    c.deliver_matching(|e| e.from.0 == 2 && e.to.0 == 1 && e.msg.kind_name() == "INV");
    assert_eq!(c.node(1).key_state(A), KeyState::Invalid);
    assert_eq!(c.node(1).key_value(A), v(3));
    assert_eq!(c.node(1).key_ts(A), ts3);

    // Node 0 receives node 2's INV while coordinating its own write:
    // adopts the value and moves to the Trans state (footnote 7).
    c.deliver_matching(|e| e.from.0 == 2 && e.to.0 == 0 && e.msg.kind_name() == "INV");
    assert_eq!(c.node(0).key_state(A), KeyState::Trans);
    assert_eq!(c.node(0).key_value(A), v(3));

    // Node 1 starts a read; it stalls because A is invalidated.
    let r1 = c.read(1, A);
    assert!(c.reply_of(r1).is_none());

    // Node 2 gathers all ACKs: its write commits, A becomes Valid there,
    // and it broadcasts VALs.
    c.deliver_matching(|e| e.to.0 == 2 && e.msg.kind_name() == "ACK");
    c.assert_reply(w3, Reply::WriteOk);
    assert_eq!(c.node(2).key_state(A), KeyState::Valid);

    // Node 1 receives node 2's VAL: validates and completes the stalled
    // read with value 3.
    c.deliver_matching(|e| e.from.0 == 2 && e.to.0 == 1 && e.msg.kind_name() == "VAL");
    assert_eq!(c.node(1).key_state(A), KeyState::Valid);
    c.assert_reply(r1, Reply::ReadOk(v(3)));

    // Node 0 gathers all ACKs for its own write: the write commits (it is
    // linearized *before* node 2's write despite completing later), but the
    // key transitions to Invalid because the VAL from node 2 is still
    // missing. With [O1] no VAL broadcast is sent for the superseded write.
    c.deliver_matching(|e| e.to.0 == 0 && e.msg.kind_name() == "ACK");
    c.assert_reply(w1, Reply::WriteOk);
    assert_eq!(c.node(0).key_state(A), KeyState::Invalid);
    assert_eq!(c.node(0).stats().vals_sent, 0, "[O1] superseded VAL elided");

    // Failure scenario: the VAL from node 2 to node 0 is lost and node 2
    // crashes. The membership is reliably updated after lease expiry.
    let lost = c.drop_matching(|e| e.from.0 == 2 && e.to.0 == 0 && e.msg.kind_name() == "VAL");
    assert_eq!(lost, 1);
    c.crash(2);
    let view = c.node(0).view().without_node(hermes_common::NodeId(2));
    c.reconfigure(view);

    // A read at node 0 finds A Invalid (invalidated by the dead node) and
    // stalls; the mlt timeout triggers a write replay of node 2's write
    // with its original timestamp and value.
    let r0 = c.read(0, A);
    assert!(c.reply_of(r0).is_none());
    c.fire_timer(0, A);
    assert_eq!(c.node(0).key_state(A), KeyState::Replay);
    assert_eq!(c.node(0).stats().replays_started, 1);

    // Node 1 ACKs the replay INV without re-applying (same timestamp); the
    // replay completes, A validates, and the read is finally served with 3.
    c.deliver_all();
    assert_eq!(c.node(0).key_state(A), KeyState::Valid);
    c.assert_reply(r0, Reply::ReadOk(v(3)));
    assert_eq!(c.node(0).key_ts(A), ts3, "replay preserves the original ts");
    c.assert_converged(A);
}

#[test]
fn concurrent_writes_both_commit_and_higher_cid_wins() {
    let mut c = Cluster::new(5, ProtocolConfig::default());
    let w_low = c.write(1, A, v(11));
    let w_high = c.write(3, A, v(33));
    c.deliver_all();
    c.quiesce();
    // Writes never abort: both clients get WriteOk (paper §3.1).
    c.assert_reply(w_low, Reply::WriteOk);
    c.assert_reply(w_high, Reply::WriteOk);
    c.assert_converged(A);
    // The higher cid write is linearized last, so its value remains.
    assert_eq!(c.node(0).key_value(A), v(33));
    assert_eq!(c.node(0).key_ts(A), Ts::new(2, 3));
}

#[test]
fn all_five_replicas_writing_concurrently_converge() {
    let mut c = Cluster::new(5, ProtocolConfig::default());
    let ops: Vec<_> = (0..5).map(|i| c.write(i, A, v(i as u64 + 100))).collect();
    c.deliver_all();
    c.quiesce();
    for op in ops {
        c.assert_reply(op, Reply::WriteOk);
    }
    c.assert_converged(A);
    // Highest cid (node 4) wins the same-version race.
    assert_eq!(c.node(0).key_value(A), v(104));
}

#[test]
fn delivery_order_does_not_change_outcome() {
    // Deliver the two INV broadcasts in opposite orders at different
    // followers; the logical timestamps still produce one global order.
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, A, v(1));
    c.write(2, A, v(3));
    // Follower 1 sees node 2's INV before node 0's.
    c.deliver_matching(|e| e.from.0 == 2 && e.to.0 == 1 && e.msg.kind_name() == "INV");
    c.deliver_matching(|e| e.from.0 == 0 && e.to.0 == 1 && e.msg.kind_name() == "INV");
    // The lower-timestamped INV must not regress the adopted state.
    assert_eq!(c.node(1).key_value(A), v(3));
    c.deliver_all();
    c.quiesce();
    c.assert_converged(A);
    assert_eq!(c.node(1).key_value(A), v(3));
}

#[test]
fn trans_coordinator_validates_via_val_before_own_acks() {
    // A coordinator whose write was superseded can be validated by the
    // superseding write's VAL while still waiting for its own ACKs; the
    // pending write then completes without disturbing the Valid state.
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let w1 = c.write(0, A, v(1));
    let w3 = c.write(2, A, v(3));
    // Node 0 learns of the higher write -> Trans.
    c.deliver_matching(|e| e.from.0 == 2 && e.to.0 == 0 && e.msg.kind_name() == "INV");
    assert_eq!(c.node(0).key_state(A), KeyState::Trans);
    // Node 2's write completes fully (including its VAL to node 0).
    c.deliver_matching(|e| e.from.0 == 2 && e.to.0 == 1 && e.msg.kind_name() == "INV");
    c.deliver_matching(|e| e.to.0 == 2 && e.msg.kind_name() == "ACK");
    c.assert_reply(w3, Reply::WriteOk);
    c.deliver_matching(|e| e.msg.kind_name() == "VAL");
    assert_eq!(c.node(0).key_state(A), KeyState::Valid);
    assert!(c.reply_of(w1).is_none(), "own ACKs still outstanding");
    // Now node 0's own ACKs arrive: the write commits and replies without
    // changing the (already Valid, higher-timestamped) key.
    c.deliver_all();
    c.assert_reply(w1, Reply::WriteOk);
    assert_eq!(c.node(0).key_state(A), KeyState::Valid);
    assert_eq!(c.node(0).key_value(A), v(3));
}

#[test]
fn queued_writes_interleave_with_remote_writes() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let w_a = c.write(0, A, v(10));
    let w_b = c.write(0, A, v(20)); // queued locally
    let w_c = c.write(1, A, v(30)); // concurrent remote write
    c.deliver_all();
    c.quiesce();
    for op in [w_a, w_b, w_c] {
        c.assert_reply(op, Reply::WriteOk);
    }
    c.assert_converged(A);
    // w_b was issued after w_a committed, so its version is the highest
    // chain; the final value must be from the maximal timestamp.
    let final_ts = c.node(0).key_ts(A);
    let final_val = c.node(0).key_value(A);
    assert!(final_ts.version >= 4);
    assert!(final_val == v(20) || final_val == v(30));
}

#[test]
fn inter_key_concurrency_no_cross_key_interference() {
    // Writes to different keys proceed fully in parallel: each key's
    // message flow is independent (no leader, no chain).
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let keys: Vec<Key> = (0..50).map(Key).collect();
    let ops: Vec<_> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| c.write(i % 3, k, v(i as u64)))
        .collect();
    // Nothing has committed yet; all 50 writes are in flight at once.
    assert!(ops.iter().all(|op| c.reply_of(*op).is_none()));
    c.deliver_all();
    for (i, op) in ops.iter().enumerate() {
        c.assert_reply(*op, Reply::WriteOk);
        c.assert_converged(keys[i]);
    }
}

#[test]
fn same_version_different_values_resolved_identically_everywhere() {
    // Three concurrent writers, then check every pairwise replica state
    // byte-for-byte (the "conflict-free write resolution" property).
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, A, v(7));
    c.write(1, A, v(8));
    c.write(2, A, v(9));
    c.deliver_all();
    c.quiesce();
    c.assert_converged(A);
    assert_eq!(c.node(0).key_value(A), v(9), "cid 2 wins the version tie");
}
