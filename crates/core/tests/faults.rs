//! Fault tolerance: message loss, duplication, reordering, node crashes and
//! the write-replay machinery (paper §3.4).

mod support;

use hermes_common::{Key, NodeId, Reply, Value};
use hermes_core::{KeyState, ProtocolConfig, Ts};
use support::Cluster;

const K: Key = Key(5);

fn v(n: u64) -> Value {
    Value::from_u64(n)
}

#[test]
fn lost_inv_is_retransmitted_until_acked() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let w = c.write(0, K, v(1));
    // Lose the INV to node 2.
    assert_eq!(
        c.drop_matching(|e| e.to.0 == 2 && e.msg.kind_name() == "INV"),
        1
    );
    c.deliver_all();
    assert!(
        c.reply_of(w).is_none(),
        "cannot commit without node 2's ACK"
    );

    // mlt fires at the coordinator: retransmit only to the straggler.
    c.fire_timer(0, K);
    assert_eq!(c.node(0).stats().retransmits, 1);
    c.deliver_all();
    c.assert_reply(w, Reply::WriteOk);
    c.assert_converged(K);
}

#[test]
fn lost_ack_is_recovered_by_retransmission() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let w = c.write(0, K, v(2));
    c.deliver_matching(|e| e.msg.kind_name() == "INV");
    assert_eq!(
        c.drop_matching(|e| e.from.0 == 1 && e.msg.kind_name() == "ACK"),
        1
    );
    c.deliver_all();
    assert!(c.reply_of(w).is_none());
    c.fire_timer(0, K);
    // The duplicate INV at node 1 (equal ts) is re-ACKed without state
    // change (FACK is unconditional).
    c.deliver_all();
    c.assert_reply(w, Reply::WriteOk);
    c.assert_converged(K);
}

#[test]
fn lost_val_triggers_follower_replay() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let w = c.write(0, K, v(3));
    c.deliver_matching(|e| e.msg.kind_name() == "INV");
    c.deliver_matching(|e| e.msg.kind_name() == "ACK");
    c.assert_reply(w, Reply::WriteOk);
    // Both VALs are lost.
    assert_eq!(c.drop_matching(|e| e.msg.kind_name() == "VAL"), 2);
    assert_eq!(c.node(1).key_state(K), KeyState::Invalid);

    // A read stalls at node 1; its mlt expires; node 1 replays the write
    // with the original timestamp.
    let r = c.read(1, K);
    assert!(c.reply_of(r).is_none());
    c.fire_timer(1, K);
    assert_eq!(c.node(1).key_state(K), KeyState::Replay);
    c.deliver_all();
    c.assert_reply(r, Reply::ReadOk(v(3)));
    assert_eq!(c.node(1).stats().replays_started, 1);
    c.quiesce();
    c.assert_converged(K);
}

#[test]
fn duplicated_messages_are_harmless() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let w = c.write(0, K, v(4));
    // Duplicate everything currently in flight (INVs), then again after the
    // ACKs appear, then the VALs.
    c.duplicate_matching(|_| true);
    c.deliver_matching(|e| e.msg.kind_name() == "INV");
    c.duplicate_matching(|e| e.msg.kind_name() == "ACK");
    c.deliver_all();
    c.assert_reply(w, Reply::WriteOk);
    c.quiesce();
    c.assert_converged(K);
    assert_eq!(c.node(1).key_value(K), v(4));
    // Exactly one commit happened at the coordinator.
    assert_eq!(c.node(0).stats().commits, 1);
}

#[test]
fn reordered_val_before_inv_is_ignored_then_recovered() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let w = c.write(0, K, v(5));
    // Hold node 2's INV; deliver node 1's flow fully.
    c.deliver_matching(|e| e.to.0 == 1 && e.msg.kind_name() == "INV");
    // Node 1 ACKs; node 2's INV still in flight. ACK from node 2 cannot
    // exist yet, so the write cannot commit. Simulate severe reordering by
    // delivering node 2's INV only after everything else.
    c.deliver_matching(|e| e.msg.kind_name() == "ACK");
    assert!(c.reply_of(w).is_none());
    c.deliver_all(); // delivers the INV to node 2, its ACK, commit, VALs
    c.assert_reply(w, Reply::WriteOk);
    c.assert_converged(K);
}

#[test]
fn coordinator_crash_before_any_inv_leaves_no_trace() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let w = c.write(0, K, v(6));
    // Crash before any INV is delivered: the write vanishes.
    c.crash(0);
    c.reconfigure(c.node(1).view().without_node(NodeId(0)));
    c.deliver_all();
    assert!(
        c.reply_of(w).is_none(),
        "client never hears back (crashed node)"
    );
    let r = c.read(1, K);
    c.assert_reply(r, Reply::ReadOk(Value::EMPTY));
    assert_eq!(c.node(1).key_ts(K), Ts::ZERO);
}

#[test]
fn coordinator_crash_after_partial_inv_resolves_by_replay() {
    // The paper's headline fault case: an invalidated follower replays the
    // dead coordinator's write, using the value carried by the INV.
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, K, v(7));
    // Only node 1 receives the INV; node 2 never does.
    c.deliver_matching(|e| e.to.0 == 1 && e.msg.kind_name() == "INV");
    assert_eq!(c.node(1).key_state(K), KeyState::Invalid);
    c.crash(0);
    c.reconfigure(c.node(1).view().without_node(NodeId(0)));

    // A read at node 1 stalls, the timer fires, the replay completes the
    // dead node's write across the surviving group.
    let r = c.read(1, K);
    c.fire_timer(1, K);
    c.deliver_all();
    c.assert_reply(r, Reply::ReadOk(v(7)));
    c.assert_converged(K);
    // Node 2 received the replayed INV with the original cid of node 0.
    assert_eq!(c.node(2).key_ts(K).cid, 0);
    assert_eq!(c.node(2).key_value(K), v(7));
}

#[test]
fn follower_crash_mid_write_commit_completes_after_reconfiguration() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let w = c.write(0, K, v(8));
    // Node 2 crashes before ACKing.
    c.deliver_matching(|e| e.to.0 == 1 && e.msg.kind_name() == "INV");
    c.deliver_matching(|e| e.msg.kind_name() == "ACK");
    c.crash(2);
    assert!(c.reply_of(w).is_none(), "write blocked on dead node's ACK");

    // After lease expiry the membership is updated; the coordinator is no
    // longer missing any ACKs and the write commits (paper §3.2,
    // "the coordinator waits ... until the membership is reliably updated").
    c.reconfigure(c.node(0).view().without_node(NodeId(2)));
    c.assert_reply(w, Reply::WriteOk);
    c.deliver_all();
    c.assert_converged(K);
}

#[test]
fn dead_node_messages_from_old_epoch_are_dropped() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, K, v(9));
    c.deliver_matching(|e| e.to.0 == 1 && e.msg.kind_name() == "INV");
    // Reconfigure (say node 2 was suspected) while node 2's traffic from
    // epoch 0 is still in flight.
    c.reconfigure(c.node(0).view().without_node(NodeId(2)));
    let drops_before = c.node(0).stats().epoch_drops + c.node(1).stats().epoch_drops;
    c.deliver_all(); // old-epoch ACK/INV arrive at nodes now in epoch 1
    let drops_after = c.node(0).stats().epoch_drops + c.node(1).stats().epoch_drops;
    assert!(
        drops_after > drops_before,
        "stale-epoch messages must be dropped at ingress"
    );
    c.quiesce();
    c.assert_converged(K);
}

#[test]
fn replay_races_original_coordinator_safely() {
    // An early (spurious) replay by a follower races the still-alive
    // coordinator: both drive the same timestamp; all replicas converge and
    // the client gets exactly one WriteOk.
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let w = c.write(0, K, v(10));
    c.deliver_matching(|e| e.msg.kind_name() == "INV");
    // Node 1's reader times out *before* the write finishes (mlt too short).
    let r = c.read(1, K);
    c.fire_timer(1, K);
    assert_eq!(c.node(1).key_state(K), KeyState::Replay);
    c.deliver_all();
    c.quiesce();
    c.assert_reply(w, Reply::WriteOk);
    c.assert_reply(r, Reply::ReadOk(v(10)));
    c.assert_converged(K);
    let replies: Vec<_> = c.replies.iter().filter(|(o, _)| *o == w).collect();
    assert_eq!(replies.len(), 1, "exactly one client reply per op");
}

#[test]
fn replay_of_replay_after_second_failure() {
    // Node 0 writes, crashes; node 1 starts replaying, crashes too; node 2
    // (which saw only the replay INV) replays again and finishes alone...
    // with a group of 1.
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, K, v(11));
    c.deliver_matching(|e| e.to.0 == 1 && e.msg.kind_name() == "INV");
    c.crash(0);
    c.reconfigure(c.node(1).view().without_node(NodeId(0)));
    let r1 = c.read(1, K);
    c.fire_timer(1, K);
    // Replay INV reaches node 2, then node 1 dies before gathering ACKs.
    c.deliver_matching(|e| e.to.0 == 2 && e.msg.kind_name() == "INV");
    assert_eq!(c.node(2).key_value(K), v(11));
    c.crash(1);
    c.reconfigure(c.node(2).view().without_node(NodeId(1)));
    assert!(c.reply_of(r1).is_none());

    let r2 = c.read(2, K);
    c.fire_timer(2, K);
    c.deliver_all();
    c.assert_reply(r2, Reply::ReadOk(v(11)));
    assert_eq!(c.node(2).key_state(K), KeyState::Valid);
    assert_eq!(
        c.node(2).key_ts(K).cid,
        0,
        "original timestamp preserved twice"
    );
}

#[test]
fn minority_node_removed_from_view_stops_serving() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, K, v(12));
    c.deliver_all();
    // Nodes 0 and 1 form the primary partition; node 2 is cut off and the
    // primary side reconfigures without it.
    let view = c.node(0).view().without_node(NodeId(2));
    c.reconfigure(view);
    // Node 2 (still on the old epoch, lease expired) refuses clients.
    let r = c.read(2, K);
    c.assert_reply(r, Reply::NotOperational);
    // The primary partition keeps serving reads and writes.
    let r = c.read(0, K);
    c.assert_reply(r, Reply::ReadOk(v(12)));
    let w = c.write(1, K, v(13));
    c.deliver_all();
    c.assert_reply(w, Reply::WriteOk);
}

#[test]
fn shadow_replica_joins_catches_up_and_serves_after_promotion() {
    let mut c = Cluster::new(4, ProtocolConfig::default());
    // Node 3 starts outside the group.
    let base = hermes_common::MembershipView {
        epoch: hermes_common::Epoch(0),
        members: hermes_common::NodeSet::first_n(3),
        shadows: hermes_common::NodeSet::EMPTY,
    };
    for i in 0..4 {
        let mut fx = Vec::new();
        c.nodes[i].on_membership_update(base, &mut fx);
    }
    // Write some data in the 3-node group.
    c.write(0, K, v(14));
    c.deliver_all();

    // Node 3 joins as a shadow: it must ACK writes but serves no clients.
    let with_shadow = base.with_shadow(NodeId(3));
    c.reconfigure(with_shadow);
    let r = c.read(3, K);
    c.assert_reply(r, Reply::NotOperational);

    // A new write now requires the shadow's ACK too.
    let w = c.write(1, Key(99), v(1));
    c.deliver_matching(|e| e.to.0 != 3);
    assert!(c.reply_of(w).is_none(), "shadow ACK required");
    c.deliver_all();
    c.assert_reply(w, Reply::WriteOk);

    // Bulk catch-up: copy committed state from node 0, then promote.
    let chunks: Vec<_> = c
        .node(0)
        .entries()
        .map(|(k, e)| (*k, e.ts, e.value.clone(), e.kind))
        .collect();
    for (k, ts, val, kind) in chunks {
        c.nodes[3].install_chunk(k, ts, val, kind);
    }
    c.reconfigure(with_shadow.with_promoted(NodeId(3)));
    let r = c.read(3, K);
    c.assert_reply(r, Reply::ReadOk(v(14)));
    let r = c.read(3, Key(99));
    c.assert_reply(r, Reply::ReadOk(v(1)));
}

#[test]
fn stale_membership_updates_are_ignored() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let v1 = c.node(0).view().without_node(NodeId(2));
    c.reconfigure(v1);
    // Replaying the original epoch-0 view must be a no-op.
    c.reconfigure(hermes_common::MembershipView::initial(3));
    assert_eq!(c.node(0).view(), v1);
    assert_eq!(c.node(0).view().epoch, hermes_common::Epoch(1));
}

#[test]
fn convergence_under_random_loss_with_retransmission() {
    // Lossy network: drop ~30% of messages deterministically, rely on mlt
    // retransmissions and replays to converge. Repeat with several patterns.
    for seed in 0..10u64 {
        let mut c = Cluster::new(3, ProtocolConfig::default());
        let mut ops = Vec::new();
        for i in 0..8 {
            ops.push(c.write((i % 3) as usize, K, v(seed * 100 + i)));
            // Deterministic pseudo-random drops keyed by (seed, i).
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i);
            c.drop_matching(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % 10 < 3
            });
            c.deliver_all();
        }
        // Drive recovery: fire timers + deliver until quiescent.
        c.quiesce();
        c.assert_converged(K);
        for op in ops {
            c.assert_reply(op, Reply::WriteOk);
        }
    }
}
