//! A tiny deterministic cluster harness for driving `HermesNode` state
//! machines in tests: routes effects, tracks timers, records replies, and
//! allows precise control over message delivery, loss and crashes.

// Each integration-test binary compiles this module separately and uses a
// different subset of the harness, so unused-method warnings here are noise.
#![allow(dead_code)]

use hermes_common::{
    ClientId, ClientOp, Effect, Key, MembershipView, NodeId, OpId, Reply, RmwOp, Value,
};
use hermes_core::{Fx, HermesNode, Msg, ProtocolConfig};
use std::collections::{BTreeSet, VecDeque};

/// A protocol message in flight between two replicas.
#[derive(Clone, Debug)]
pub struct Envelope {
    pub from: NodeId,
    pub to: NodeId,
    pub msg: Msg,
}

/// A deterministic test cluster of Hermes replicas.
pub struct Cluster {
    pub nodes: Vec<HermesNode>,
    pub inflight: VecDeque<Envelope>,
    pub replies: Vec<(OpId, Reply)>,
    pub timers: BTreeSet<(u32, Key)>,
    crashed: BTreeSet<u32>,
    next_seq: u64,
}

impl Cluster {
    pub fn new(n: usize, cfg: ProtocolConfig) -> Self {
        let view = MembershipView::initial(n);
        Cluster {
            nodes: (0..n)
                .map(|i| HermesNode::new(NodeId(i as u32), view, cfg))
                .collect(),
            inflight: VecDeque::new(),
            replies: Vec::new(),
            timers: BTreeSet::new(),
            crashed: BTreeSet::new(),
            next_seq: 0,
        }
    }

    pub fn node(&self, i: usize) -> &HermesNode {
        &self.nodes[i]
    }

    fn fresh_op(&mut self, node: usize) -> OpId {
        self.next_seq += 1;
        OpId::new(ClientId(node as u64), self.next_seq)
    }

    /// Issues a client operation at `node`, applying resulting effects.
    pub fn client(&mut self, node: usize, key: Key, cop: ClientOp) -> OpId {
        assert!(
            !self.crashed.contains(&(node as u32)),
            "client op sent to crashed node {node}"
        );
        let op = self.fresh_op(node);
        let mut fx: Fx = Vec::new();
        self.nodes[node].on_client_op(op, key, cop, &mut fx);
        self.apply_effects(node, fx);
        op
    }

    pub fn write(&mut self, node: usize, key: Key, value: Value) -> OpId {
        self.client(node, key, ClientOp::Write(value))
    }

    pub fn read(&mut self, node: usize, key: Key) -> OpId {
        self.client(node, key, ClientOp::Read)
    }

    pub fn rmw(&mut self, node: usize, key: Key, rmw: RmwOp) -> OpId {
        self.client(node, key, ClientOp::Rmw(rmw))
    }

    fn apply_effects(&mut self, at: usize, fx: Fx) {
        let me = NodeId(at as u32);
        for effect in fx {
            match effect {
                Effect::Send { to, msg } => self.inflight.push_back(Envelope { from: me, to, msg }),
                Effect::Broadcast { msg } => {
                    let peers = self.nodes[at].view().broadcast_set(me);
                    for to in peers {
                        self.inflight.push_back(Envelope {
                            from: me,
                            to,
                            msg: msg.clone(),
                        });
                    }
                }
                Effect::Reply { op, reply } => self.replies.push((op, reply)),
                Effect::ArmTimer { key } => {
                    self.timers.insert((at as u32, key));
                }
                Effect::DisarmTimer { key } => {
                    self.timers.remove(&(at as u32, key));
                }
            }
        }
    }

    /// Delivers the oldest in-flight message; returns false if none remain.
    pub fn deliver_one(&mut self) -> bool {
        let Some(env) = self.inflight.pop_front() else {
            return false;
        };
        self.deliver_envelope(env);
        true
    }

    fn deliver_envelope(&mut self, env: Envelope) {
        if self.crashed.contains(&env.to.0) || self.crashed.contains(&env.from.0) {
            return; // dropped: crashed endpoint
        }
        let mut fx: Fx = Vec::new();
        self.nodes[env.to.index()].on_message(env.from, env.msg, &mut fx);
        self.apply_effects(env.to.index(), fx);
    }

    /// Delivers all in-flight messages (including ones generated on the way)
    /// in FIFO order until the network is empty.
    pub fn deliver_all(&mut self) {
        while self.deliver_one() {}
    }

    /// Delivers (repeatedly) every in-flight message matching `pred`,
    /// including newly generated matching messages; leaves the rest queued.
    pub fn deliver_matching(&mut self, pred: impl Fn(&Envelope) -> bool) {
        loop {
            let pos = self.inflight.iter().position(&pred);
            match pos {
                Some(i) => {
                    let env = self.inflight.remove(i).expect("position just found");
                    self.deliver_envelope(env);
                }
                None => return,
            }
        }
    }

    /// Silently drops every queued message matching `pred` (message loss).
    pub fn drop_matching(&mut self, mut pred: impl FnMut(&Envelope) -> bool) -> usize {
        let before = self.inflight.len();
        self.inflight.retain(|e| !pred(e));
        before - self.inflight.len()
    }

    /// Duplicates every queued message matching `pred`.
    pub fn duplicate_matching(&mut self, mut pred: impl FnMut(&Envelope) -> bool) {
        let dups: Vec<Envelope> = self.inflight.iter().filter(|e| pred(e)).cloned().collect();
        self.inflight.extend(dups);
    }

    /// Fires the armed message-loss timer of `node` for `key`.
    pub fn fire_timer(&mut self, node: usize, key: Key) {
        assert!(
            self.timers.contains(&(node as u32, key)),
            "timer not armed for node {node} {key}"
        );
        let mut fx: Fx = Vec::new();
        self.nodes[node].on_mlt_timeout(key, &mut fx);
        self.apply_effects(node, fx);
    }

    /// Fires every armed timer once (snapshot taken first).
    pub fn fire_all_timers(&mut self) {
        let armed: Vec<(u32, Key)> = self.timers.iter().copied().collect();
        for (node, key) in armed {
            if self.crashed.contains(&node) {
                continue;
            }
            let mut fx: Fx = Vec::new();
            self.nodes[node as usize].on_mlt_timeout(key, &mut fx);
            self.apply_effects(node as usize, fx);
        }
    }

    /// Crash-stops a node: its queued messages are discarded and it neither
    /// sends nor receives from now on.
    pub fn crash(&mut self, node: usize) {
        self.crashed.insert(node as u32);
        let dead = NodeId(node as u32);
        self.inflight.retain(|e| e.from != dead && e.to != dead);
    }

    /// Installs a reconfigured view (the dead node removed) on all live
    /// replicas — what the reliable-membership service would do after lease
    /// expiry (paper §3.4).
    pub fn reconfigure(&mut self, view: MembershipView) {
        for i in 0..self.nodes.len() {
            if self.crashed.contains(&(i as u32)) {
                continue;
            }
            let mut fx: Fx = Vec::new();
            self.nodes[i].on_membership_update(view, &mut fx);
            self.apply_effects(i, fx);
        }
    }

    /// Delivers everything and fires timers until the system is fully
    /// quiescent (no messages, and firing timers produces no messages).
    pub fn quiesce(&mut self) {
        for _ in 0..64 {
            self.deliver_all();
            let before = self.replies.len();
            self.fire_all_timers();
            if self.inflight.is_empty() && self.replies.len() == before {
                return;
            }
        }
        panic!("cluster failed to quiesce within 64 rounds");
    }

    /// The recorded reply for `op`, if completed.
    pub fn reply_of(&self, op: OpId) -> Option<&Reply> {
        self.replies.iter().find(|(o, _)| *o == op).map(|(_, r)| r)
    }

    /// Asserts `op` completed with the given reply.
    #[track_caller]
    pub fn assert_reply(&self, op: OpId, expected: Reply) {
        match self.reply_of(op) {
            Some(got) => assert_eq!(got, &expected, "unexpected reply for {op}"),
            None => panic!("operation {op} has no reply yet"),
        }
    }

    /// Asserts all live replicas agree on (ts, value) for `key` and hold it
    /// Valid — the quiescent convergence invariant.
    #[track_caller]
    pub fn assert_converged(&self, key: Key) {
        let live: Vec<&HermesNode> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(i, n)| !self.crashed.contains(&(*i as u32)) && n.is_operational())
            .map(|(_, n)| n)
            .collect();
        let ts0 = live[0].key_ts(key);
        let v0 = live[0].key_value(key);
        for n in &live {
            assert_eq!(
                n.key_state(key),
                hermes_core::KeyState::Valid,
                "{}: {key} not Valid at quiescence",
                n.node_id()
            );
            assert_eq!(
                n.key_ts(key),
                ts0,
                "{}: ts divergence on {key}",
                n.node_id()
            );
            assert_eq!(
                n.key_value(key),
                v0,
                "{}: value divergence on {key}",
                n.node_id()
            );
        }
    }
}
