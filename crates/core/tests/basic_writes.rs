//! End-to-end tests of failure-free reads and writes (paper §3.2).

mod support;

use hermes_common::{Key, Reply, Value};
use hermes_core::{KeyState, ProtocolConfig, Ts};
use support::Cluster;

const K: Key = Key(7);

fn v(n: u64) -> Value {
    Value::from_u64(n)
}

#[test]
fn unwritten_keys_read_empty_everywhere() {
    let mut c = Cluster::new(5, ProtocolConfig::default());
    for node in 0..5 {
        let op = c.read(node, K);
        c.assert_reply(op, Reply::ReadOk(Value::EMPTY));
    }
    // Reads are local: nothing ever hit the network.
    assert!(c.inflight.is_empty());
}

#[test]
fn write_commits_after_all_acks_and_validates_followers() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let w = c.write(0, K, v(42));

    // INV broadcast is in flight; the write has not committed yet.
    assert!(c.reply_of(w).is_none());
    assert_eq!(c.node(0).key_state(K), KeyState::Write);

    // Deliver INVs: followers invalidate and ACK.
    c.deliver_matching(|e| e.msg.kind_name() == "INV");
    assert_eq!(c.node(1).key_state(K), KeyState::Invalid);
    assert_eq!(c.node(2).key_state(K), KeyState::Invalid);
    // Early value propagation: followers already hold the new value.
    assert_eq!(c.node(1).key_value(K), v(42));

    // Deliver ACKs: the coordinator commits and replies to the client.
    c.deliver_matching(|e| e.msg.kind_name() == "ACK");
    c.assert_reply(w, Reply::WriteOk);
    assert_eq!(c.node(0).key_state(K), KeyState::Valid);
    // Followers are still Invalid until the VAL arrives.
    assert_eq!(c.node(1).key_state(K), KeyState::Invalid);

    c.deliver_matching(|e| e.msg.kind_name() == "VAL");
    c.assert_converged(K);
}

#[test]
fn commit_point_is_before_val_delivery() {
    // The client reply is sent when all ACKs are in (1 RTT exposed latency);
    // VALs complete off the critical path (paper Figure 2).
    let mut c = Cluster::new(5, ProtocolConfig::default());
    let w = c.write(2, K, v(1));
    c.deliver_matching(|e| e.msg.kind_name() == "INV");
    c.deliver_matching(|e| e.msg.kind_name() == "ACK");
    c.assert_reply(w, Reply::WriteOk);
    // VALs still queued.
    assert!(c.inflight.iter().all(|e| e.msg.kind_name() == "VAL"));
    assert_eq!(c.inflight.len(), 4);
    c.deliver_all();
    c.assert_converged(K);
}

#[test]
fn any_replica_can_coordinate_writes() {
    // Decentralized writes: every node drives its own write to completion.
    let mut c = Cluster::new(5, ProtocolConfig::default());
    for node in 0..5 {
        let key = Key(100 + node as u64);
        let w = c.write(node, key, v(node as u64));
        c.deliver_all();
        c.assert_reply(w, Reply::WriteOk);
        c.assert_converged(key);
    }
}

#[test]
fn reads_after_write_return_new_value_at_every_replica() {
    let mut c = Cluster::new(5, ProtocolConfig::default());
    c.write(3, K, v(9));
    c.deliver_all();
    for node in 0..5 {
        let r = c.read(node, K);
        c.assert_reply(r, Reply::ReadOk(v(9)));
    }
}

#[test]
fn reads_stall_while_invalid_and_complete_on_val() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, K, v(5));
    c.deliver_matching(|e| e.msg.kind_name() == "INV");

    // A read at an invalidated follower stalls.
    let r = c.read(1, K);
    assert!(c.reply_of(r).is_none(), "read must stall on Invalid key");

    // Completing the write (ACKs then VAL) releases the read with the new
    // value — never the old one.
    c.deliver_all();
    c.assert_reply(r, Reply::ReadOk(v(5)));
}

#[test]
fn writes_queue_behind_local_in_flight_write() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let w1 = c.write(0, K, v(1));
    let w2 = c.write(0, K, v(2)); // queued: key is in Write state locally
    assert!(c.reply_of(w2).is_none());
    c.deliver_all();
    c.assert_reply(w1, Reply::WriteOk);
    c.assert_reply(w2, Reply::WriteOk);
    c.assert_converged(K);
    // Final value is the second write's.
    assert_eq!(c.node(1).key_value(K), v(2));
    // Versions advanced twice (by 2 each, with RMW support on).
    assert_eq!(c.node(0).key_ts(K), Ts::new(4, 0));
}

#[test]
fn sequential_writes_from_different_nodes_advance_one_version_chain() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    for (i, node) in [(1u64, 0usize), (2, 1), (3, 2), (4, 0)] {
        let w = c.write(node, K, v(i));
        c.deliver_all();
        c.assert_reply(w, Reply::WriteOk);
    }
    c.assert_converged(K);
    assert_eq!(c.node(0).key_value(K), v(4));
    assert_eq!(c.node(0).key_ts(K).version, 8);
}

#[test]
fn local_read_api_matches_protocol_reads() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    assert_eq!(c.node(1).local_read(K), Some(Value::EMPTY));
    c.write(0, K, v(6));
    c.deliver_matching(|e| e.msg.kind_name() == "INV");
    // Invalidated follower refuses a local read.
    assert_eq!(c.node(1).local_read(K), None);
    c.deliver_all();
    assert_eq!(c.node(1).local_read(K), Some(v(6)));
}

#[test]
fn no_replays_or_retransmits_in_failure_free_runs() {
    let mut c = Cluster::new(5, ProtocolConfig::default());
    for i in 0..20 {
        c.write(i % 5, Key(i as u64), v(i as u64));
        c.deliver_all();
    }
    c.quiesce();
    for node in 0..5 {
        let s = c.node(node).stats();
        assert_eq!(s.replays_started, 0, "node {node} replayed unnecessarily");
        assert_eq!(s.retransmits, 0, "node {node} retransmitted unnecessarily");
        assert_eq!(s.rmw_aborts, 0);
        assert_eq!(s.epoch_drops, 0);
    }
}

#[test]
fn message_counts_match_protocol_cost_model() {
    // One write in an n=5 group: 4 INVs, 4 ACKs, 4 VALs (paper: 1.5 RTTs,
    // 3(n-1) messages).
    let mut c = Cluster::new(5, ProtocolConfig::default());
    c.write(0, K, v(1));
    c.deliver_all();
    let coord = c.node(0).stats();
    assert_eq!(coord.invs_sent, 4);
    assert_eq!(coord.vals_sent, 4);
    assert_eq!(coord.acks_sent, 0);
    let follower_acks: u64 = (1..5).map(|i| c.node(i).stats().acks_sent).sum();
    assert_eq!(follower_acks, 4);
}

#[test]
fn read_only_workload_sends_no_messages() {
    let mut c = Cluster::new(7, ProtocolConfig::default());
    c.write(0, K, v(3));
    c.deliver_all();
    let sent_before: u64 = (0..7).map(|i| c.node(i).stats().messages_sent()).sum();
    for node in 0..7 {
        for _ in 0..100 {
            let r = c.read(node, K);
            c.assert_reply(r, Reply::ReadOk(v(3)));
        }
    }
    let sent_after: u64 = (0..7).map(|i| c.node(i).stats().messages_sent()).sum();
    assert_eq!(sent_before, sent_after, "reads must be entirely local");
}

#[test]
fn larger_groups_work_end_to_end() {
    for n in [1, 2, 3, 5, 7] {
        let mut c = Cluster::new(n, ProtocolConfig::default());
        let w = c.write(n - 1, K, v(n as u64));
        c.deliver_all();
        c.assert_reply(w, Reply::WriteOk);
        c.assert_converged(K);
    }
}
