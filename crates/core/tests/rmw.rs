//! Read-modify-write semantics (paper §3.6): RMWs commit like writes but are
//! conflicting — at most one of any set of concurrent RMWs to a key commits,
//! and writes always beat concurrent RMWs.

mod support;

use hermes_common::{Key, NodeId, Reply, RmwOp, Value};
use hermes_core::{KeyState, ProtocolConfig, Ts};
use support::Cluster;

const K: Key = Key(3);

fn v(n: u64) -> Value {
    Value::from_u64(n)
}

fn fetch_add(delta: u64) -> RmwOp {
    RmwOp::FetchAdd { delta }
}

fn cas(expect: u64, new: u64) -> RmwOp {
    RmwOp::CompareAndSwap {
        expect: v(expect),
        new: v(new),
    }
}

#[test]
fn solo_rmw_commits_and_returns_prior_value() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, K, v(10));
    c.deliver_all();
    let op = c.rmw(1, K, fetch_add(5));
    c.deliver_all();
    c.assert_reply(op, Reply::RmwOk { prior: v(10) });
    c.assert_converged(K);
    assert_eq!(c.node(2).key_value(K), v(15));
}

#[test]
fn rmw_version_increment_is_one_vs_write_two() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    let w = c.write(0, K, v(1));
    c.deliver_all();
    c.assert_reply(w, Reply::WriteOk);
    assert_eq!(c.node(0).key_ts(K), Ts::new(2, 0));
    c.rmw(1, K, fetch_add(1));
    c.deliver_all();
    assert_eq!(c.node(0).key_ts(K), Ts::new(3, 1));
}

#[test]
fn cas_success_and_failure() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, K, v(1));
    c.deliver_all();

    // Matching CAS commits.
    let ok = c.rmw(1, K, cas(1, 2));
    c.deliver_all();
    c.assert_reply(ok, Reply::RmwOk { prior: v(1) });
    assert_eq!(c.node(0).key_value(K), v(2));

    // Non-matching CAS fails locally with the current value, with no
    // network traffic (it is a linearizable read of a Valid key).
    let sent_before: u64 = (0..3).map(|i| c.node(i).stats().messages_sent()).sum();
    let fail = c.rmw(2, K, cas(7, 9));
    c.assert_reply(fail, Reply::CasFailed { current: v(2) });
    let sent_after: u64 = (0..3).map(|i| c.node(i).stats().messages_sent()).sum();
    assert_eq!(sent_before, sent_after);
    assert_eq!(c.node(0).key_value(K), v(2), "failed CAS must not update");
}

#[test]
fn write_beats_concurrent_rmw_which_aborts() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    // Node 0 issues an RMW, node 2 a concurrent write, from the same base.
    let rmw = c.rmw(0, K, fetch_add(100));
    let wr = c.write(2, K, v(50));
    // RMW ts = (1, c0); write ts = (2, c2): the write always has the higher
    // timestamp (CTS increments: +1 RMW, +2 write).
    assert!(c.node(2).key_ts(K) > c.node(0).key_ts(K));
    c.deliver_all();
    c.quiesce();
    c.assert_reply(rmw, Reply::RmwAborted);
    c.assert_reply(wr, Reply::WriteOk);
    c.assert_converged(K);
    assert_eq!(c.node(1).key_value(K), v(50), "only the write took effect");
    assert!(c.node(0).stats().rmw_aborts >= 1);
}

#[test]
fn concurrent_rmws_highest_cid_commits_rest_abort() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, K, v(0));
    c.deliver_all();
    let r0 = c.rmw(0, K, fetch_add(1));
    let r1 = c.rmw(1, K, fetch_add(10));
    let r2 = c.rmw(2, K, fetch_add(100));
    c.deliver_all();
    c.quiesce();
    // Paper: "if only RMW updates are racing, the RMW with the highest node
    // id will commit, and the rest will abort."
    c.assert_reply(r2, Reply::RmwOk { prior: v(0) });
    c.assert_reply(r0, Reply::RmwAborted);
    c.assert_reply(r1, Reply::RmwAborted);
    c.assert_converged(K);
    assert_eq!(c.node(0).key_value(K), v(100));
}

#[test]
fn stale_rmw_inv_gets_nacked_with_local_state() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    // Node 1 completes a write while node 0's RMW INV (from the older base)
    // is still in flight.
    let rmw = c.rmw(0, K, fetch_add(1)); // ts (1, c0)
    let wr = c.write(1, K, v(5)); // ts (2, c1)

    // Node 2 applies the write first...
    c.deliver_matching(|e| e.from.0 == 1 && e.to.0 == 2 && e.msg.kind_name() == "INV");
    assert_eq!(c.node(2).key_ts(K), Ts::new(2, 1));
    // ...then receives the stale RMW INV: it must NACK (an INV carrying its
    // newer local state), not ACK (FRMW-ACK).
    c.deliver_matching(|e| e.from.0 == 0 && e.to.0 == 2 && e.msg.kind_name() == "INV");
    assert!(c.node(2).stats().rmw_nacks >= 1);
    c.deliver_all();
    c.quiesce();
    c.assert_reply(rmw, Reply::RmwAborted);
    c.assert_reply(wr, Reply::WriteOk);
    c.assert_converged(K);
    assert_eq!(c.node(0).key_value(K), v(5));
}

#[test]
fn rmw_chain_applies_sequentially() {
    // Non-concurrent RMWs all commit: a counter incremented once per node.
    let mut c = Cluster::new(5, ProtocolConfig::default());
    c.write(0, K, v(0));
    c.deliver_all();
    for node in 0..5 {
        let op = c.rmw(node, K, fetch_add(1));
        c.deliver_all();
        c.assert_reply(
            op,
            Reply::RmwOk {
                prior: v(node as u64),
            },
        );
    }
    c.assert_converged(K);
    assert_eq!(c.node(0).key_value(K), v(5));
}

#[test]
fn rmw_resets_acks_and_replays_after_reconfiguration() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, K, v(1));
    c.deliver_all();
    let rmw = c.rmw(0, K, fetch_add(1));
    // Node 1 ACKs, node 2 crashes before ACKing.
    c.deliver_matching(|e| e.to.0 == 1 && e.msg.kind_name() == "INV");
    c.deliver_matching(|e| e.from.0 == 1 && e.msg.kind_name() == "ACK");
    assert!(c.reply_of(rmw).is_none());
    c.crash(2);
    let invs_before = c.node(0).stats().invs_sent;
    c.reconfigure(c.node(0).view().without_node(NodeId(2)));
    // CRMW-replay: gathered ACKs discarded, INV re-broadcast in new epoch.
    assert!(c.node(0).stats().invs_sent > invs_before);
    assert!(c.reply_of(rmw).is_none(), "ACKs were reset");
    c.deliver_all();
    c.assert_reply(rmw, Reply::RmwOk { prior: v(1) });
    c.assert_converged(K);
    assert_eq!(c.node(1).key_value(K), v(2));
}

#[test]
fn rmw_on_invalid_key_queues_until_valid() {
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, K, v(1));
    c.deliver_matching(|e| e.msg.kind_name() == "INV");
    // Key is Invalid at node 1; RMW queues.
    let rmw = c.rmw(1, K, fetch_add(1));
    assert!(c.reply_of(rmw).is_none());
    assert_eq!(c.node(1).key_state(K), KeyState::Invalid);
    c.deliver_all();
    c.quiesce();
    c.assert_reply(rmw, Reply::RmwOk { prior: v(1) });
    assert_eq!(c.node(0).key_value(K), v(2));
}

#[test]
fn lock_service_pattern_mutual_exclusion() {
    // The Chubby/Zookeeper-style usage from the paper's intro: CAS-acquire
    // a lock; at most one concurrent acquirer wins.
    let mut c = Cluster::new(3, ProtocolConfig::default());
    c.write(0, K, v(0)); // initialize the lock to "free"
    c.deliver_all();
    let a = c.rmw(0, K, cas(0, 1)); // 0 = free; 1/2 = held by node
    let b = c.rmw(2, K, cas(0, 2));
    c.deliver_all();
    c.quiesce();
    let a_won = matches!(c.reply_of(a), Some(Reply::RmwOk { .. }));
    let b_won = matches!(c.reply_of(b), Some(Reply::RmwOk { .. }));
    assert!(
        a_won ^ b_won,
        "exactly one CAS must win (a: {a_won}, b: {b_won})"
    );
    c.assert_converged(K);
    let holder = c.node(0).key_value(K);
    assert_eq!(holder, if a_won { v(1) } else { v(2) });
}

#[test]
fn rmw_disabled_config_uses_single_increments() {
    let cfg = ProtocolConfig {
        rmw_support: false,
        ..ProtocolConfig::default()
    };
    let mut c = Cluster::new(3, cfg);
    c.write(0, K, v(1));
    c.deliver_all();
    assert_eq!(c.node(0).key_ts(K), Ts::new(1, 0));
    c.write(1, K, v(2));
    c.deliver_all();
    assert_eq!(c.node(0).key_ts(K), Ts::new(2, 1));
}

#[test]
fn aborted_rmw_never_takes_effect_without_faults() {
    // In fault-free runs an aborted RMW's value must never be observed.
    for _ in 0..5 {
        let mut c = Cluster::new(3, ProtocolConfig::default());
        c.write(0, K, v(7));
        c.deliver_all();
        let rmw = c.rmw(1, K, fetch_add(1000));
        let wr = c.write(2, K, v(8));
        c.deliver_all();
        c.quiesce();
        c.assert_reply(rmw, Reply::RmwAborted);
        c.assert_reply(wr, Reply::WriteOk);
        let fin = c.node(0).key_value(K);
        assert_eq!(fin, v(8), "aborted RMW value leaked: {fin:?}");
    }
}
