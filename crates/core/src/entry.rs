use crate::{Ts, UpdateKind};
use hermes_common::{ClientOp, NodeId, NodeSet, OpId, Value};
use std::collections::VecDeque;

/// Protocol state of one key at one replica (paper §3.2).
///
/// Four stable states plus the transient `Trans`:
///
/// * `Valid` — the local value is the latest committed one; reads serve
///   locally.
/// * `Invalid` — an update is in flight; reads stall.
/// * `Write` — this replica coordinates an update to the key.
/// * `Replay` — this replica replays an update originally coordinated
///   elsewhere (fault handling, §3.4).
/// * `Trans` — this replica's in-flight update was superseded by a
///   higher-timestamped one; it still awaits its own ACKs, but will end in
///   `Invalid` rather than `Valid` (footnote 7).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KeyState {
    /// Latest committed value held locally; reads are served.
    Valid,
    /// Invalidated by an in-flight update; reads stall.
    Invalid,
    /// Coordinating a client update (rule CINV onwards).
    Write,
    /// Coordinating a replay of another node's update.
    Replay,
    /// Coordinating an update that has been superseded (transient).
    Trans,
}

impl KeyState {
    /// Whether this replica currently coordinates an update for the key.
    pub fn is_coordinating(self) -> bool {
        matches!(self, KeyState::Write | KeyState::Replay | KeyState::Trans)
    }
}

/// Bookkeeping for the update this replica is currently driving on a key:
/// either a client write/RMW it coordinates or a replay it took over.
#[derive(Clone, Debug)]
pub(crate) struct Pending {
    /// Timestamp of the driven update (ACKs must echo it).
    pub ts: Ts,
    /// Write or RMW.
    pub kind: UpdateKind,
    /// Proposed value (kept for INV retransmissions).
    pub value: Value,
    /// Replicas that have acknowledged the INV.
    pub acks: NodeSet,
    /// Client to answer on commit, with the pre-update value (for
    /// `Reply::RmwOk`). `None` for replays.
    pub client: Option<(OpId, Value)>,
}

/// Client requests parked on a key that cannot currently serve them.
#[derive(Clone, Debug, Default)]
pub(crate) struct Waiting {
    /// Reads stalled on a non-Valid key (paper: "the request is stalled").
    pub reads: Vec<OpId>,
    /// Updates stalled behind the in-flight one (issued one at a time).
    pub updates: VecDeque<(OpId, ClientOp)>,
}

impl Waiting {
    pub(crate) fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.updates.is_empty()
    }
}

/// Full per-key protocol metadata at one replica (paper Figure 3).
#[derive(Clone, Debug)]
pub struct KeyEntry {
    /// Protocol state.
    pub state: KeyState,
    /// Local logical timestamp (version + cid of the last applied update).
    pub ts: Ts,
    /// Local value (the latest applied, not necessarily yet committed).
    pub value: Value,
    /// Kind of the last applied update (stored for faithful replays, §3.6).
    pub kind: UpdateKind,
    /// Transport-level sender of the INV that set the current `ts`; used by
    /// the \[O3\] optimization to exclude the write's driver from the ACK
    /// set a follower waits for.
    pub driver: NodeId,
    /// In-flight update this replica drives, if any.
    pub(crate) pending: Option<Pending>,
    /// Parked client requests, lazily allocated (most keys never stall).
    pub(crate) waiting: Option<Box<Waiting>>,
    /// \[O3\] timestamp the ACK tracker refers to.
    pub(crate) o3_ts: Ts,
    /// \[O3\] replicas whose broadcast ACKs for `o3_ts` have been seen.
    pub(crate) o3_acks: NodeSet,
}

impl KeyEntry {
    /// A fresh entry for a never-written key: Valid, version 0, empty value.
    pub fn new(owner: NodeId) -> Self {
        KeyEntry {
            state: KeyState::Valid,
            ts: Ts::ZERO,
            value: Value::EMPTY,
            kind: UpdateKind::Write,
            driver: owner,
            pending: None,
            waiting: None,
            o3_ts: Ts::ZERO,
            o3_acks: NodeSet::EMPTY,
        }
    }

    /// Applies an update's value and timestamp locally (shared by the
    /// coordinator-apply in CINV and the follower-adopt in FINV).
    pub(crate) fn apply(&mut self, ts: Ts, value: Value, kind: UpdateKind, driver: NodeId) {
        debug_assert!(ts > self.ts, "apply must move the timestamp forward");
        self.ts = ts;
        self.value = value;
        self.kind = kind;
        self.driver = driver;
        // A new timestamp invalidates any ACK tracking for the old one.
        if self.o3_ts != ts {
            self.o3_ts = ts;
            self.o3_acks = NodeSet::EMPTY;
        }
    }

    /// Mutable access to the waiting queues, allocating them on first use.
    pub(crate) fn waiting_mut(&mut self) -> &mut Waiting {
        self.waiting.get_or_insert_with(Default::default)
    }

    /// Whether any client request is parked on this key.
    pub fn has_waiting(&self) -> bool {
        self.waiting.as_ref().is_some_and(|w| !w.is_empty())
    }

    /// Whether this entry is fully quiescent (safe to treat as cold).
    pub fn is_idle(&self) -> bool {
        self.state == KeyState::Valid && self.pending.is_none() && !self.has_waiting()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_entry_is_valid_and_idle() {
        let e = KeyEntry::new(NodeId(0));
        assert_eq!(e.state, KeyState::Valid);
        assert_eq!(e.ts, Ts::ZERO);
        assert!(e.value.is_empty());
        assert!(e.is_idle());
        assert!(!e.has_waiting());
    }

    #[test]
    fn apply_moves_timestamp_and_resets_o3_tracker() {
        let mut e = KeyEntry::new(NodeId(0));
        e.o3_acks.insert(NodeId(1));
        e.apply(
            Ts::new(2, 1),
            Value::from_u64(5),
            UpdateKind::Write,
            NodeId(1),
        );
        assert_eq!(e.ts, Ts::new(2, 1));
        assert_eq!(e.value, Value::from_u64(5));
        assert_eq!(e.driver, NodeId(1));
        assert_eq!(e.o3_ts, Ts::new(2, 1));
        assert!(e.o3_acks.is_empty(), "tracker must reset on new ts");
    }

    #[test]
    #[should_panic(expected = "forward")]
    #[cfg(debug_assertions)]
    fn apply_rejects_stale_timestamps() {
        let mut e = KeyEntry::new(NodeId(0));
        e.apply(Ts::new(2, 1), Value::EMPTY, UpdateKind::Write, NodeId(1));
        e.apply(Ts::new(1, 0), Value::EMPTY, UpdateKind::Write, NodeId(0));
    }

    #[test]
    fn waiting_allocates_lazily() {
        let mut e = KeyEntry::new(NodeId(0));
        assert!(e.waiting.is_none());
        e.waiting_mut().reads.push(OpId::default());
        assert!(e.has_waiting());
        assert!(!e.is_idle());
    }

    #[test]
    fn coordinating_states() {
        assert!(KeyState::Write.is_coordinating());
        assert!(KeyState::Replay.is_coordinating());
        assert!(KeyState::Trans.is_coordinating());
        assert!(!KeyState::Valid.is_coordinating());
        assert!(!KeyState::Invalid.is_coordinating());
    }
}
