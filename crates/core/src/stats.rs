/// Event counters maintained by a [`crate::HermesNode`].
///
/// Used by tests to assert protocol behaviour (e.g. "no replays happened in
/// a failure-free run") and by the benchmark harness to report message
/// amplification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProtocolStats {
    /// Client operations received.
    pub client_ops: u64,
    /// Reads served immediately from the local Valid copy.
    pub local_reads: u64,
    /// Reads that stalled on a non-Valid key.
    pub stalled_reads: u64,
    /// Updates (writes + RMWs) this node coordinated to commit.
    pub commits: u64,
    /// INV messages sent (unicast count; a broadcast to k peers counts k).
    pub invs_sent: u64,
    /// ACK messages sent.
    pub acks_sent: u64,
    /// VAL messages sent.
    pub vals_sent: u64,
    /// INV retransmissions triggered by the message-loss timeout.
    pub retransmits: u64,
    /// Write replays this node initiated (paper §3.4).
    pub replays_started: u64,
    /// RMWs aborted by rule CRMW-abort (paper §3.6).
    pub rmw_aborts: u64,
    /// Negative FRMW-ACK replies sent (stale RMW INV answered with local
    /// state).
    pub rmw_nacks: u64,
    /// Messages dropped at ingress due to an epoch mismatch (paper §2.4).
    pub epoch_drops: u64,
    /// Validations applied (local key transitioned to Valid by VAL or by the
    /// \[O3\] all-ACKs rule).
    pub validations: u64,
}

impl ProtocolStats {
    /// Total protocol messages sent by this node.
    pub fn messages_sent(&self) -> u64 {
        self.invs_sent + self.acks_sent + self.vals_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = ProtocolStats {
            invs_sent: 4,
            acks_sent: 2,
            vals_sent: 4,
            ..Default::default()
        };
        assert_eq!(s.messages_sent(), 10);
    }

    #[test]
    fn default_is_all_zero() {
        let s = ProtocolStats::default();
        assert_eq!(s.messages_sent(), 0);
        assert_eq!(s, ProtocolStats::default());
    }
}
