use core::fmt;

/// A Hermes per-key logical timestamp (paper §3.1).
///
/// A lexicographically ordered `[version, cid]` pair implemented as a Lamport
/// clock: `version` increments on every update to the key, and `cid` is the
/// (possibly virtual) node id of the coordinating replica. Two updates are
/// *concurrent* when they carry the same version from different coordinators;
/// the cid breaks the tie, so every node can locally establish one global
/// order of updates per key.
///
/// With RMW support enabled, writes advance the version by **two** and RMWs
/// by **one** (paper §3.6, rule CTS), so a write racing an RMW from the same
/// base timestamp always wins and the RMW aborts.
///
/// # Examples
///
/// ```
/// use hermes_core::Ts;
///
/// let base = Ts::ZERO;
/// let a = base.advanced(2, 0); // write by node 0
/// let b = base.advanced(2, 1); // concurrent write by node 1
/// assert!(a < b, "concurrent writes order by cid");
/// assert!(b < b.advanced(1, 0), "higher version always wins");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ts {
    /// Per-key version number, incremented on every update.
    pub version: u64,
    /// Node id (or virtual node id, §3.3 \[O2\]) of the coordinator.
    pub cid: u32,
}

impl Ts {
    /// The timestamp of a never-written key.
    pub const ZERO: Ts = Ts { version: 0, cid: 0 };

    /// Creates a timestamp from its parts.
    #[inline]
    pub const fn new(version: u64, cid: u32) -> Self {
        Ts { version, cid }
    }

    /// The timestamp a coordinator with id `cid` assigns when advancing this
    /// timestamp by `increment` versions (rule CTS).
    #[inline]
    #[must_use]
    pub fn advanced(self, increment: u64, cid: u32) -> Ts {
        Ts {
            version: self.version + increment,
            cid,
        }
    }
}

impl fmt::Debug for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[v{}.c{}]", self.version, self.cid)
    }
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Whether an update is a plain write or a read-modify-write.
///
/// The flag rides in every INV message and is stored in per-key metadata so
/// that replays re-execute the update with the correct conflict semantics
/// (paper §3.6, *Metadata*).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum UpdateKind {
    /// A plain write: never aborts, always commits (paper §3.1).
    Write,
    /// A read-modify-write: aborts if any concurrent update carries a higher
    /// timestamp (paper §3.6).
    Rmw,
}

impl UpdateKind {
    /// Whether this update kind is a read-modify-write.
    #[inline]
    pub fn is_rmw(self) -> bool {
        matches!(self, UpdateKind::Rmw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        // Paper footnote 5: A > B iff vA > vB, or vA == vB and cidA > cidB.
        assert!(Ts::new(2, 0) > Ts::new(1, 9));
        assert!(Ts::new(1, 2) > Ts::new(1, 1));
        assert_eq!(Ts::new(3, 3), Ts::new(3, 3));
        assert!(Ts::new(0, 1) > Ts::ZERO);
    }

    #[test]
    fn ordering_is_total_on_distinct_cids() {
        // Distinct (version, cid) pairs are never equal: unique tags give a
        // global per-key order (paper §3.1).
        let a = Ts::new(4, 1);
        let b = Ts::new(4, 2);
        assert!(a < b || b < a);
        assert_ne!(a, b);
    }

    #[test]
    fn advanced_applies_increment_and_cid() {
        let t = Ts::new(10, 3).advanced(2, 7);
        assert_eq!(t, Ts::new(12, 7));
        // RMW bump of 1 from the same base loses to the write bump of 2.
        let rmw = Ts::new(10, 9).advanced(1, 9);
        assert!(rmw < t, "write must beat concurrent RMW");
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Ts::new(5, 2)), "[v5.c2]");
        assert_eq!(format!("{}", Ts::ZERO), "[v0.c0]");
    }

    #[test]
    fn update_kind_flags() {
        assert!(UpdateKind::Rmw.is_rmw());
        assert!(!UpdateKind::Write.is_rmw());
    }
}
