use crate::{Ts, UpdateKind};
use hermes_common::{Epoch, Key, Value};

/// A Hermes protocol message (paper Figure 3).
///
/// All three message types are tagged with the sender's membership
/// [`Epoch`]; receivers drop messages from other epochs (paper §2.4). The
/// sender's identity travels at the transport layer, not in the message.
///
/// `Inv` carries the new value (*early value propagation*), which is what
/// makes writes safely replayable by any invalidated replica (paper §3.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Msg {
    /// Invalidation: "a write of `value` with timestamp `ts` is in flight".
    ///
    /// Also used as the *negative* reply a follower sends back to an RMW
    /// coordinator whose timestamp is stale (rule FRMW-ACK, §3.6): the
    /// follower answers with an `Inv` describing its own newer local state —
    /// the same message shape a write replay uses.
    Inv {
        /// Key being written.
        key: Key,
        /// Timestamp assigned by the coordinator (rule CTS).
        ts: Ts,
        /// The new value (early value propagation).
        value: Value,
        /// Write or RMW (stored by followers for faithful replays).
        kind: UpdateKind,
        /// Sender's membership epoch.
        epoch: Epoch,
    },
    /// Acknowledgment of an `Inv`, echoing its timestamp (rule FACK).
    Ack {
        /// Key being acknowledged.
        key: Key,
        /// Timestamp copied from the acknowledged INV.
        ts: Ts,
        /// Sender's membership epoch.
        epoch: Epoch,
    },
    /// Validation: the write with timestamp `ts` committed (rule CVAL).
    Val {
        /// Key being validated.
        key: Key,
        /// Timestamp of the committed write.
        ts: Ts,
        /// Sender's membership epoch.
        epoch: Epoch,
    },
}

impl Msg {
    /// The key this message concerns.
    pub fn key(&self) -> Key {
        match self {
            Msg::Inv { key, .. } | Msg::Ack { key, .. } | Msg::Val { key, .. } => *key,
        }
    }

    /// The timestamp this message carries.
    pub fn ts(&self) -> Ts {
        match self {
            Msg::Inv { ts, .. } | Msg::Ack { ts, .. } | Msg::Val { ts, .. } => *ts,
        }
    }

    /// The sender's membership epoch.
    pub fn epoch(&self) -> Epoch {
        match self {
            Msg::Inv { epoch, .. } | Msg::Ack { epoch, .. } | Msg::Val { epoch, .. } => *epoch,
        }
    }

    /// Short kind tag, for traces and debugging.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Msg::Inv { .. } => "INV",
            Msg::Ack { .. } => "ACK",
            Msg::Val { .. } => "VAL",
        }
    }

    /// Approximate wire size in bytes, mirroring the paper's message formats
    /// (Figure 3): INV = header + key + ts + value; ACK/VAL = header + key +
    /// ts. Used by the simulator's bandwidth model and by the Wings codec
    /// tests as a cross-check.
    pub fn wire_size(&self) -> usize {
        // 1B type tag + 8B epoch + 8B key + 8B version + 4B cid.
        const FIXED: usize = 1 + 8 + 8 + 8 + 4;
        match self {
            Msg::Inv { value, .. } => FIXED + 1 + 4 + value.len(), // kind + len prefix
            Msg::Ack { .. } | Msg::Val { .. } => FIXED,
        }
    }

    /// Wire size with optional cross-node trace context: a sampled trace
    /// id adds exactly 8 bytes (flagged in the tag byte by the Wings
    /// codec); an unsampled message is byte-identical to the plain
    /// format. The simulator's bandwidth model never samples, so it keeps
    /// charging [`Msg::wire_size`] — the codec tests pin both shapes.
    pub fn wire_size_traced(&self, traced: bool) -> usize {
        self.wire_size() + if traced { 8 } else { 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::Epoch;

    fn sample_inv() -> Msg {
        Msg::Inv {
            key: Key(7),
            ts: Ts::new(3, 1),
            value: Value::filled(9, 32),
            kind: UpdateKind::Write,
            epoch: Epoch(2),
        }
    }

    #[test]
    fn accessors_cover_all_variants() {
        let inv = sample_inv();
        let ack = Msg::Ack {
            key: Key(7),
            ts: Ts::new(3, 1),
            epoch: Epoch(2),
        };
        let val = Msg::Val {
            key: Key(7),
            ts: Ts::new(3, 1),
            epoch: Epoch(2),
        };
        for m in [&inv, &ack, &val] {
            assert_eq!(m.key(), Key(7));
            assert_eq!(m.ts(), Ts::new(3, 1));
            assert_eq!(m.epoch(), Epoch(2));
        }
        assert_eq!(inv.kind_name(), "INV");
        assert_eq!(ack.kind_name(), "ACK");
        assert_eq!(val.kind_name(), "VAL");
    }

    #[test]
    fn wire_size_scales_with_value() {
        let small = sample_inv();
        let big = Msg::Inv {
            key: Key(7),
            ts: Ts::new(3, 1),
            value: Value::filled(9, 1024),
            kind: UpdateKind::Write,
            epoch: Epoch(2),
        };
        assert_eq!(big.wire_size() - small.wire_size(), 1024 - 32);
        let ack = Msg::Ack {
            key: Key(7),
            ts: Ts::new(3, 1),
            epoch: Epoch(2),
        };
        assert!(ack.wire_size() < small.wire_size());
    }

    #[test]
    fn traced_wire_size_adds_exactly_eight_bytes_when_sampled() {
        let inv = sample_inv();
        let ack = Msg::Ack {
            key: Key(7),
            ts: Ts::new(3, 1),
            epoch: Epoch(2),
        };
        for m in [&inv, &ack] {
            assert_eq!(m.wire_size_traced(false), m.wire_size());
            assert_eq!(m.wire_size_traced(true), m.wire_size() + 8);
        }
    }
}
