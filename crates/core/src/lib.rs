//! # hermes-core — the Hermes replication protocol
//!
//! A from-scratch Rust implementation of **Hermes** (Katsarakis et al.,
//! ASPLOS 2020): a broadcast-based, membership-based, fault-tolerant
//! replication protocol for in-memory datastores that provides
//! *linearizability* with **local reads** at every replica and
//! **decentralized, inter-key concurrent, single-round-trip writes**.
//!
//! The two ideas the protocol combines (paper §1):
//!
//! 1. **Invalidations** — cache-coherence-inspired lightweight locking: a
//!    write first moves the key to `Invalid` at every replica, so no replica
//!    can serve a stale read, yet concurrent writes never abort;
//! 2. **Per-key logical timestamps** — Lamport `[version, cid]` clocks let
//!    every replica locally agree on one global order of writes per key,
//!    resolve conflicts in place, and *safely replay* any interrupted write
//!    (INVs carry the new value — early value propagation).
//!
//! This crate is **sans-io**: [`HermesNode`] is a deterministic state
//! machine consuming client ops, peer [`Msg`]s, timeouts and membership
//! updates, and emitting [`hermes_common::Effect`]s. Runtimes (simulated or
//! threaded), the test suites and the model checker all drive this same
//! type.
//!
//! # Quickstart
//!
//! ```
//! use hermes_common::{ClientOp, Effect, Key, MembershipView, NodeId, OpId, Reply, Value};
//! use hermes_core::{HermesNode, ProtocolConfig};
//!
//! // A single-replica "group" commits synchronously — handy to see the API.
//! let mut node = HermesNode::new(NodeId(0), MembershipView::initial(1), ProtocolConfig::default());
//! let mut fx = Vec::new();
//! node.on_client_op(OpId::default(), Key(1), ClientOp::Write(Value::from_u64(9)), &mut fx);
//! assert!(fx.iter().any(|e| matches!(e, Effect::Reply { reply: Reply::WriteOk, .. })));
//! assert_eq!(node.local_read(Key(1)), Some(Value::from_u64(9)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod entry;
mod msg;
mod node;
mod stats;
mod ts;

pub use config::ProtocolConfig;
pub use entry::{KeyEntry, KeyState};
pub use msg::Msg;
pub use node::{Fx, HermesNode};
pub use stats::ProtocolStats;
pub use ts::{Ts, UpdateKind};
