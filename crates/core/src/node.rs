use crate::entry::{KeyEntry, KeyState, Pending};
use crate::{Msg, ProtocolConfig, ProtocolStats, Ts, UpdateKind};
use hermes_common::{
    Capabilities, ClientOp, Effect, Key, MembershipView, NodeId, NodeSet, OpId, ReplicaProtocol,
    Reply, Value,
};
use std::collections::BTreeMap;

/// Effect buffer filled by [`HermesNode`] transition functions.
pub type Fx = Vec<Effect<Msg>>;

/// One Hermes replica, as a deterministic, I/O-free state machine.
///
/// The node consumes client operations ([`HermesNode::on_client_op`]), peer
/// messages ([`HermesNode::on_message`]), per-key message-loss timeouts
/// ([`HermesNode::on_mlt_timeout`]) and membership reconfigurations
/// ([`HermesNode::on_membership_update`]); it produces [`Effect`]s that the
/// surrounding runtime executes. The simulator, the threaded cluster and the
/// model checker all drive this same type, so correctness results transfer
/// between them.
///
/// The implementation follows the protocol of paper §3.2 (reads, writes,
/// replays), §3.3 (optimizations O1–O3), §3.4 (network faults and
/// reconfiguration) and §3.6 (RMWs). Rule names from the paper (CTS, CINV,
/// CACK, CVAL, FINV, FACK, FVAL, FRMW-ACK, CRMW-abort, CRMW-replay) are
/// cited at the matching code.
///
/// # Examples
///
/// Driving a write through a 3-replica group by hand:
///
/// ```
/// use hermes_common::{ClientOp, Effect, Key, MembershipView, NodeId, OpId, Value};
/// use hermes_core::{HermesNode, Msg, ProtocolConfig};
///
/// let view = MembershipView::initial(3);
/// let cfg = ProtocolConfig::default();
/// let mut n0 = HermesNode::new(NodeId(0), view, cfg);
/// let mut n1 = HermesNode::new(NodeId(1), view, cfg);
///
/// let mut fx = Vec::new();
/// n0.on_client_op(OpId::default(), Key(1), ClientOp::Write(Value::from_u64(7)), &mut fx);
/// // The coordinator broadcast an INV; deliver it to node 1 and collect the ACK.
/// let inv = fx.iter().find_map(|e| match e {
///     Effect::Broadcast { msg } => Some(msg.clone()),
///     _ => None,
/// }).unwrap();
/// let mut fx1 = Vec::new();
/// n1.on_message(NodeId(0), inv, &mut fx1);
/// assert!(matches!(fx1[0], Effect::Send { msg: Msg::Ack { .. }, .. }));
/// ```
#[derive(Clone, Debug)]
pub struct HermesNode {
    me: NodeId,
    cfg: ProtocolConfig,
    view: MembershipView,
    operational: bool,
    keys: BTreeMap<Key, KeyEntry>,
    next_vid: u32,
    stats: ProtocolStats,
}

impl HermesNode {
    /// Creates a replica `me` operating under `view`.
    pub fn new(me: NodeId, view: MembershipView, cfg: ProtocolConfig) -> Self {
        let operational = view.members.contains(me) || view.shadows.contains(me);
        HermesNode {
            me,
            cfg,
            view,
            operational,
            keys: BTreeMap::new(),
            next_vid: 0,
            stats: ProtocolStats::default(),
        }
    }

    /// This replica's id.
    pub fn node_id(&self) -> NodeId {
        self.me
    }

    /// The membership view this replica currently operates under.
    pub fn view(&self) -> MembershipView {
        self.view
    }

    /// The protocol configuration.
    pub fn config(&self) -> ProtocolConfig {
        self.cfg
    }

    /// Event counters accumulated so far.
    pub fn stats(&self) -> ProtocolStats {
        self.stats
    }

    /// Whether this replica currently belongs to the membership (member or
    /// shadow) and therefore processes protocol messages.
    pub fn is_operational(&self) -> bool {
        self.operational
    }

    /// Protocol state of `key` at this replica (`Valid` for untouched keys).
    pub fn key_state(&self, key: Key) -> KeyState {
        self.keys.get(&key).map_or(KeyState::Valid, |e| e.state)
    }

    /// Logical timestamp of `key` at this replica.
    pub fn key_ts(&self, key: Key) -> Ts {
        self.keys.get(&key).map_or(Ts::ZERO, |e| e.ts)
    }

    /// The locally stored value of `key` regardless of its state.
    ///
    /// This is *not* a linearizable read — use [`HermesNode::local_read`] or
    /// a client operation for that.
    pub fn key_value(&self, key: Key) -> Value {
        self.keys
            .get(&key)
            .map_or(Value::EMPTY, |e| e.value.clone())
    }

    /// One coherent `(state, timestamp, value)` view of `key`, for runtimes
    /// that mirror protocol state into an external store (the seqlock KVS of
    /// paper §4.1). Untouched keys read as `(Valid, Ts::ZERO, None)`.
    ///
    /// Unlike calling [`HermesNode::key_state`], [`HermesNode::key_ts`] and
    /// [`HermesNode::key_value`] separately, this does one map lookup and
    /// borrows the value instead of cloning it — the sharded threaded
    /// runtime mirrors on every effect drain, so this is on its hot path.
    pub fn key_mirror(&self, key: Key) -> (KeyState, Ts, Option<&Value>) {
        match self.keys.get(&key) {
            None => (KeyState::Valid, Ts::ZERO, None),
            Some(e) => (e.state, e.ts, Some(&e.value)),
        }
    }

    /// Serves a read locally iff the key is `Valid` (the paper's read rule);
    /// returns `None` when the read would stall or the replica is not
    /// serving.
    pub fn local_read(&self, key: Key) -> Option<Value> {
        if !self.operational || !self.view.is_serving(self.me) {
            return None;
        }
        match self.keys.get(&key) {
            None => Some(Value::EMPTY),
            Some(e) if e.state == KeyState::Valid => Some(e.value.clone()),
            Some(_) => None,
        }
    }

    /// Number of keys with materialized protocol metadata.
    pub fn keys_touched(&self) -> usize {
        self.keys.len()
    }

    /// Iterates over `(key, entry)` pairs with materialized metadata, in key
    /// order. Used by state-sync (shadow-replica catch-up) and by the model
    /// checker's invariant checks.
    pub fn entries(&self) -> impl Iterator<Item = (&Key, &KeyEntry)> {
        self.keys.iter()
    }

    /// Installs a key's committed state directly, bypassing the protocol.
    ///
    /// Only for shadow-replica bulk catch-up (paper §3.4, *Recovery*): the
    /// chunk is applied iff it is newer than local state, mirroring the
    /// FINV timestamp check. Never use this on an operational serving
    /// replica outside of recovery.
    pub fn install_chunk(&mut self, key: Key, ts: Ts, value: Value, kind: UpdateKind) {
        let me = self.me;
        let e = self.keys.entry(key).or_insert_with(|| KeyEntry::new(me));
        if ts > e.ts && !e.state.is_coordinating() {
            e.apply(ts, value, kind, me);
            e.state = KeyState::Valid;
        }
    }

    // ------------------------------------------------------------------
    // Client operations
    // ------------------------------------------------------------------

    /// Handles a client operation addressed to this replica.
    ///
    /// Reads on `Valid` keys reply immediately (local reads); reads on other
    /// states stall (paper §3.2). Updates are issued when the key is `Valid`
    /// and no update is in flight locally, otherwise they queue behind it.
    pub fn on_client_op(&mut self, op: OpId, key: Key, cop: ClientOp, fx: &mut Fx) {
        self.stats.client_ops += 1;
        if !self.operational || !self.view.is_serving(self.me) {
            fx.push(Effect::Reply {
                op,
                reply: Reply::NotOperational,
            });
            return;
        }
        match cop {
            ClientOp::Read => match self.keys.get_mut(&key) {
                None => {
                    self.stats.local_reads += 1;
                    fx.push(Effect::Reply {
                        op,
                        reply: Reply::ReadOk(Value::EMPTY),
                    });
                }
                Some(e) if e.state == KeyState::Valid => {
                    self.stats.local_reads += 1;
                    let value = e.value.clone();
                    fx.push(Effect::Reply {
                        op,
                        reply: Reply::ReadOk(value),
                    });
                }
                Some(e) => {
                    self.stats.stalled_reads += 1;
                    e.waiting_mut().reads.push(op);
                    fx.push(Effect::ArmTimer { key });
                }
            },
            cop @ (ClientOp::Write(_) | ClientOp::Rmw(_)) => {
                let me = self.me;
                let e = self.keys.entry(key).or_insert_with(|| KeyEntry::new(me));
                if e.state == KeyState::Valid && e.pending.is_none() {
                    self.issue_update(key, op, cop, fx);
                    self.pump(key, fx);
                } else {
                    e.waiting_mut().updates.push_back((op, cop));
                    fx.push(Effect::ArmTimer { key });
                }
            }
        }
    }

    /// CTS + CINV: assigns a timestamp, applies locally, broadcasts INV.
    ///
    /// Precondition: key entry exists, is `Valid`, has no pending update.
    fn issue_update(&mut self, key: Key, op: OpId, cop: ClientOp, fx: &mut Fx) {
        let cid = self.next_cid();
        let epoch = self.view.epoch;
        let fanout = self.view.broadcast_set(self.me).len() as u64;
        let write_incr = self.cfg.write_version_increment();
        let rmw_incr = self.cfg.rmw_version_increment();
        let me = self.me;
        let e = self
            .keys
            .get_mut(&key)
            .expect("issue_update on missing entry");
        debug_assert!(e.state == KeyState::Valid && e.pending.is_none());

        let (ts, value, kind, client) = match cop {
            ClientOp::Write(v) => {
                // CTS: writes advance the version by two under RMW support so
                // that they always beat concurrent RMWs (paper §3.6).
                let ts = e.ts.advanced(write_incr, cid);
                (ts, v, UpdateKind::Write, Some((op, Value::EMPTY)))
            }
            ClientOp::Rmw(r) => {
                match r.apply(&e.value) {
                    None => {
                        // CAS expectation mismatch: no update needed; this is
                        // a linearizable read of the Valid local value.
                        let current = e.value.clone();
                        fx.push(Effect::Reply {
                            op,
                            reply: Reply::CasFailed { current },
                        });
                        return;
                    }
                    Some(new) => {
                        let prior = e.value.clone();
                        let ts = e.ts.advanced(rmw_incr, cid);
                        (ts, new, UpdateKind::Rmw, Some((op, prior)))
                    }
                }
            }
            ClientOp::Read => unreachable!("reads are not updates"),
        };

        e.apply(ts, value.clone(), kind, me);
        e.state = KeyState::Write;
        e.pending = Some(Pending {
            ts,
            kind,
            value: value.clone(),
            acks: NodeSet::EMPTY,
            client,
        });
        fx.push(Effect::Broadcast {
            msg: Msg::Inv {
                key,
                ts,
                value,
                kind,
                epoch,
            },
        });
        self.stats.invs_sent += fanout;
        fx.push(Effect::ArmTimer { key });
    }

    /// Picks the cid for a new update (round-robin over virtual node ids
    /// when \[O2\] is enabled, paper §3.3).
    fn next_cid(&mut self) -> u32 {
        let k = self.cfg.virtual_ids_per_node.max(1);
        if k == 1 {
            return self.me.0;
        }
        let i = self.next_vid % k;
        self.next_vid = (self.next_vid + 1) % k;
        self.me.0 + i * ProtocolConfig::VID_STRIDE
    }

    // ------------------------------------------------------------------
    // Peer messages
    // ------------------------------------------------------------------

    /// Handles a protocol message from peer `from`.
    ///
    /// Messages tagged with a different membership epoch are dropped at
    /// ingress (paper §2.4); during reconfiguration this manifests to the
    /// sender as message loss, which its mlt retransmissions absorb (§3.4).
    pub fn on_message(&mut self, from: NodeId, msg: Msg, fx: &mut Fx) {
        if !self.operational {
            return;
        }
        if msg.epoch() != self.view.epoch {
            self.stats.epoch_drops += 1;
            return;
        }
        match msg {
            Msg::Inv {
                key,
                ts,
                value,
                kind,
                ..
            } => self.on_inv(from, key, ts, value, kind, fx),
            Msg::Ack { key, ts, .. } => self.on_ack(from, key, ts, fx),
            Msg::Val { key, ts, .. } => self.on_val(key, ts, fx),
        }
    }

    /// FINV / FRMW-ACK / CRMW-abort: handles an incoming invalidation.
    fn on_inv(
        &mut self,
        from: NodeId,
        key: Key,
        ts: Ts,
        value: Value,
        kind: UpdateKind,
        fx: &mut Fx,
    ) {
        let me = self.me;
        let epoch = self.view.epoch;
        let fanout = self.view.broadcast_set(me).len() as u64;
        let o3 = self.cfg.broadcast_acks;
        let e = self.keys.entry(key).or_insert_with(|| KeyEntry::new(me));

        // CRMW-abort: a pending RMW loses to any higher-timestamped update
        // (paper §3.6). The write that beat it is linearized after it would
        // have been, so the abort is safe; the client may retry.
        if let Some(p) = e.pending.as_ref() {
            if p.kind.is_rmw() && ts > p.ts {
                let p = e.pending.take().expect("just observed");
                self.stats.rmw_aborts += 1;
                if let Some((op, _)) = p.client {
                    fx.push(Effect::Reply {
                        op,
                        reply: Reply::RmwAborted,
                    });
                }
            }
        }

        // FRMW-ACK, negative half: a stale RMW INV is answered with an INV
        // describing the local (newer) state — the same message shape a
        // write replay uses — so the RMW coordinator learns it lost.
        if kind.is_rmw() && ts < e.ts {
            self.stats.rmw_nacks += 1;
            let reply = Msg::Inv {
                key,
                ts: e.ts,
                value: e.value.clone(),
                kind: e.kind,
                epoch,
            };
            self.stats.invs_sent += 1;
            fx.push(Effect::Send {
                to: from,
                msg: reply,
            });
            return;
        }

        if ts > e.ts {
            // FINV: adopt the newer value and timestamp; the key becomes
            // Invalid, or Trans if this replica is still driving its own
            // (now superseded) update (paper §3.2 and footnote 7).
            e.apply(ts, value, kind, from);
            e.state = if e.pending.is_some() {
                KeyState::Trans
            } else {
                KeyState::Invalid
            };
            if e.has_waiting() {
                // Progress observed: reset the replay timer (paper §3.4).
                fx.push(Effect::ArmTimer { key });
            }
        } else if ts == e.ts {
            debug_assert_eq!(
                e.value, value,
                "two updates with equal timestamps must carry the same value"
            );
            // A replayer may have taken over driving this very timestamp.
            e.driver = from;
        }
        // (ts < e.ts for a plain write: no adoption, but still ACK below —
        // FACK is unconditional so superseded writes can complete.)

        // FACK: acknowledge, echoing the INV's timestamp.
        let ack = Msg::Ack { key, ts, epoch };
        if o3 {
            self.stats.acks_sent += fanout;
            fx.push(Effect::Broadcast { msg: ack });
            // ACKs may have arrived (and been buffered) before this INV, and
            // in small groups the required set can be empty: re-check the
            // [O3] validation condition now that the INV is applied.
            self.o3_try_validate(key, fx);
        } else {
            self.stats.acks_sent += 1;
            fx.push(Effect::Send { to: from, msg: ack });
        }
    }

    /// \[O3\]: validates `key` if ACKs from every live replica other than
    /// this one and the write's driver have been observed for the current
    /// timestamp (paper §3.3). Returns whether validation happened.
    fn o3_try_validate(&mut self, key: Key, fx: &mut Fx) -> bool {
        debug_assert!(self.cfg.broadcast_acks);
        let Some(e) = self.keys.get(&key) else {
            return false;
        };
        if e.state == KeyState::Valid || e.o3_ts != e.ts {
            return false;
        }
        let required = self.view.ack_set().without(self.me).without(e.driver);
        if !e.o3_acks.is_superset(required) {
            return false;
        }
        self.validate(key, fx);
        true
    }

    /// CACK (+ \[O3\] follower-side validation): handles an ACK.
    fn on_ack(&mut self, from: NodeId, key: Key, ts: Ts, fx: &mut Fx) {
        let me = self.me;
        let e = if self.cfg.broadcast_acks {
            // Under [O3] an ACK can overtake its INV; materialize the entry
            // so the ACK is buffered and counted once the INV lands.
            self.keys.entry(key).or_insert_with(|| KeyEntry::new(me))
        } else {
            match self.keys.get_mut(&key) {
                Some(e) => e,
                None => return,
            }
        };
        let mut progressed = false;
        if let Some(p) = e.pending.as_mut() {
            if ts == p.ts && p.acks.insert(from) {
                progressed = true;
            }
        }
        let track_o3 = self.cfg.broadcast_acks;
        if track_o3 {
            // Track broadcast ACKs; reset the tracker when a newer timestamp
            // appears (ACKs can arrive before their INV under reordering).
            if ts > e.o3_ts {
                e.o3_ts = ts;
                e.o3_acks = NodeSet::EMPTY;
            }
            if ts == e.o3_ts {
                e.o3_acks.insert(from);
            }
        }
        // A follower needs ACKs from every live replica other than itself
        // and the write's driver (which implicitly has the value); then the
        // write is globally visible and reads may be served without waiting
        // for a VAL (paper §3.3 [O3]).
        if !(track_o3 && self.o3_try_validate(key, fx)) && progressed {
            self.pump(key, fx);
        }
    }

    /// FVAL: a VAL validates the key iff its timestamp matches exactly.
    fn on_val(&mut self, key: Key, ts: Ts, fx: &mut Fx) {
        let Some(e) = self.keys.get(&key) else {
            return;
        };
        if ts != e.ts || e.state == KeyState::Valid {
            return; // stale or duplicate VAL: ignored (paper §3.2).
        }
        self.validate(key, fx);
    }

    /// Transitions a key to Valid (shared by FVAL and the \[O3\] rule), then
    /// lets parked work proceed.
    fn validate(&mut self, key: Key, fx: &mut Fx) {
        let e = self.keys.get_mut(&key).expect("validate on missing entry");
        debug_assert_ne!(e.state, KeyState::Valid);
        e.state = KeyState::Valid;
        self.stats.validations += 1;
        self.pump(key, fx);
    }

    // ------------------------------------------------------------------
    // Commit pipeline
    // ------------------------------------------------------------------

    /// Drives a key forward after any event that may have unblocked it:
    /// commits a completed pending update (CACK/CVAL), serves stalled reads,
    /// and issues the next queued update.
    fn pump(&mut self, key: Key, fx: &mut Fx) {
        loop {
            self.try_commit(key, fx);
            let Some(e) = self.keys.get_mut(&key) else {
                return;
            };
            if e.state != KeyState::Valid {
                return;
            }
            if let Some(w) = e.waiting.as_mut() {
                if !w.reads.is_empty() {
                    let value = e.value.clone();
                    for op in w.reads.drain(..) {
                        fx.push(Effect::Reply {
                            op,
                            reply: Reply::ReadOk(value.clone()),
                        });
                    }
                }
            }
            if e.pending.is_some() {
                // Early-validated by a replayer: keep the timer armed so the
                // remaining ACKs are chased by retransmission.
                return;
            }
            let next = e.waiting.as_mut().and_then(|w| w.updates.pop_front());
            match next {
                Some((op, cop)) => {
                    self.issue_update(key, op, cop, fx);
                    // Loop: in a single-node group the update commits
                    // synchronously and further queued updates may proceed.
                }
                None => {
                    if self.keys.get(&key).is_some_and(|e| e.is_idle()) {
                        fx.push(Effect::DisarmTimer { key });
                    }
                    return;
                }
            }
        }
    }

    /// CACK: commits the pending update once ACKs from all live replicas
    /// (members and shadows) have arrived.
    fn try_commit(&mut self, key: Key, fx: &mut Fx) {
        let required = self.view.ack_set().without(self.me);
        let epoch = self.view.epoch;
        let fanout = required.len() as u64;
        let o3 = self.cfg.broadcast_acks;
        let elide = self.cfg.elide_superseded_val;
        let Some(e) = self.keys.get_mut(&key) else {
            return;
        };
        let Some(p) = e.pending.as_ref() else {
            return;
        };
        if !p.acks.is_superset(required) {
            return;
        }
        let p = e.pending.take().expect("just observed");
        self.stats.commits += 1;

        match e.state {
            KeyState::Write | KeyState::Replay => {
                // The write is committed and this replica still holds it as
                // its latest: validate locally and broadcast VAL (CVAL).
                debug_assert_eq!(e.ts, p.ts, "uninvalidated coordinator holds its own ts");
                e.state = KeyState::Valid;
                self.stats.validations += 1;
                if !o3 {
                    self.stats.vals_sent += fanout;
                    fx.push(Effect::Broadcast {
                        msg: Msg::Val {
                            key,
                            ts: p.ts,
                            epoch,
                        },
                    });
                }
            }
            KeyState::Trans => {
                // Superseded while in flight: the update is committed (it is
                // linearized before the superseding one) but the key stays
                // Invalid until the newer write validates (footnote 7).
                // [O1]: the VAL broadcast is unnecessary — every replica
                // already carries a higher timestamp and would ignore it.
                e.state = KeyState::Invalid;
                if !o3 && !elide {
                    self.stats.vals_sent += fanout;
                    fx.push(Effect::Broadcast {
                        msg: Msg::Val {
                            key,
                            ts: p.ts,
                            epoch,
                        },
                    });
                }
                fx.push(Effect::ArmTimer { key });
            }
            KeyState::Valid => {
                // A replayer completed this update first and its VAL already
                // validated us; nothing further to do.
            }
            KeyState::Invalid => {
                debug_assert!(false, "Invalid state cannot hold a pending update");
            }
        }

        if let Some((op, prior)) = p.client {
            let reply = match p.kind {
                UpdateKind::Write => Reply::WriteOk,
                UpdateKind::Rmw => Reply::RmwOk { prior },
            };
            fx.push(Effect::Reply { op, reply });
        }
    }

    // ------------------------------------------------------------------
    // Timeouts and replays
    // ------------------------------------------------------------------

    /// Handles the message-loss timeout (mlt) for `key` (paper §3.4).
    ///
    /// A coordinator retransmits its INVs to replicas that have not ACKed; a
    /// follower stuck on an Invalid key with parked requests suspects a lost
    /// VAL (or a dead coordinator) and initiates a write replay.
    pub fn on_mlt_timeout(&mut self, key: Key, fx: &mut Fx) {
        if !self.operational {
            return;
        }
        let required = self.view.ack_set().without(self.me);
        let epoch = self.view.epoch;
        let Some(e) = self.keys.get_mut(&key) else {
            return;
        };
        if let Some(p) = e.pending.as_ref() {
            // Suspected INV or ACK loss: retransmit to the stragglers and
            // re-arm (paper §3.4, *Imperfect Links*).
            let missing = required.difference(p.acks);
            for to in missing {
                self.stats.invs_sent += 1;
                self.stats.retransmits += 1;
                fx.push(Effect::Send {
                    to,
                    msg: Msg::Inv {
                        key,
                        ts: p.ts,
                        value: p.value.clone(),
                        kind: p.kind,
                        epoch,
                    },
                });
            }
            fx.push(Effect::ArmTimer { key });
            // Membership may have shrunk since the last ACK; re-check.
            self.pump(key, fx);
            return;
        }
        match e.state {
            KeyState::Invalid if e.has_waiting() => self.start_replay(key, fx),
            KeyState::Invalid | KeyState::Valid => {
                // No demand parked on this key: leave it lazy; a future
                // request will stall, arm the timer and replay if needed.
                fx.push(Effect::DisarmTimer { key });
            }
            KeyState::Write | KeyState::Replay | KeyState::Trans => {
                debug_assert!(false, "coordinating states always hold a pending update");
            }
        }
    }

    /// Takes over coordination of the in-flight update that invalidated this
    /// key, re-executing CINV→CVAL with the *original* timestamp and value
    /// (paper §3.2, *Write Replays*).
    fn start_replay(&mut self, key: Key, fx: &mut Fx) {
        let me = self.me;
        let epoch = self.view.epoch;
        let fanout = self.view.broadcast_set(me).len() as u64;
        let e = self.keys.get_mut(&key).expect("replay on missing entry");
        debug_assert_eq!(e.state, KeyState::Invalid);
        debug_assert!(e.pending.is_none());
        e.state = KeyState::Replay;
        e.driver = me;
        e.pending = Some(Pending {
            ts: e.ts,
            kind: e.kind,
            value: e.value.clone(),
            acks: NodeSet::EMPTY,
            client: None,
        });
        let msg = Msg::Inv {
            key,
            ts: e.ts,
            value: e.value.clone(),
            kind: e.kind,
            epoch,
        };
        self.stats.replays_started += 1;
        self.stats.invs_sent += fanout;
        fx.push(Effect::Broadcast { msg });
        fx.push(Effect::ArmTimer { key });
        self.pump(key, fx);
    }

    // ------------------------------------------------------------------
    // Membership
    // ------------------------------------------------------------------

    /// Installs a reconfigured membership view (an *m-update*, paper §3.4).
    ///
    /// Pending writes keep their gathered ACKs, drop requirements on removed
    /// replicas, and are retransmitted to stragglers; pending RMWs reset
    /// their ACKs and replay from scratch so they cannot commit on a mix of
    /// pre- and post-reconfiguration acknowledgments (rule CRMW-replay).
    pub fn on_membership_update(&mut self, view: MembershipView, fx: &mut Fx) {
        if view.epoch <= self.view.epoch {
            return; // stale update
        }
        self.view = view;
        let in_group = view.members.contains(self.me) || view.shadows.contains(self.me);
        self.operational = in_group;

        if !in_group {
            // Removed from the membership (crashed from the group's point of
            // view, or sitting in a minority partition): stop serving. All
            // parked work is failed; outcomes of already-broadcast updates
            // are indeterminate for this replica's clients.
            let keys: Vec<Key> = self.keys.keys().copied().collect();
            for key in keys {
                let e = self.keys.get_mut(&key).expect("iterating existing keys");
                if let Some(p) = e.pending.take() {
                    if let Some((op, _)) = p.client {
                        fx.push(Effect::Reply {
                            op,
                            reply: Reply::NotOperational,
                        });
                    }
                }
                if let Some(w) = e.waiting.take() {
                    for op in w.reads {
                        fx.push(Effect::Reply {
                            op,
                            reply: Reply::NotOperational,
                        });
                    }
                    for (op, _) in w.updates {
                        fx.push(Effect::Reply {
                            op,
                            reply: Reply::NotOperational,
                        });
                    }
                }
                fx.push(Effect::DisarmTimer { key });
            }
            return;
        }

        let required = view.ack_set().without(self.me);
        let epoch = view.epoch;
        let active: Vec<Key> = self
            .keys
            .iter()
            .filter(|(_, e)| e.pending.is_some() || e.has_waiting())
            .map(|(k, _)| *k)
            .collect();
        for key in active {
            let e = self.keys.get_mut(&key).expect("iterating existing keys");
            if let Some(p) = e.pending.as_mut() {
                p.acks = p.acks.intersection(required);
                if p.kind.is_rmw() {
                    // CRMW-replay: restart the RMW in the new configuration.
                    p.acks = NodeSet::EMPTY;
                    let msg = Msg::Inv {
                        key,
                        ts: p.ts,
                        value: p.value.clone(),
                        kind: p.kind,
                        epoch,
                    };
                    self.stats.invs_sent += required.len() as u64;
                    fx.push(Effect::Broadcast { msg });
                } else {
                    let missing = required.difference(p.acks);
                    for to in missing {
                        self.stats.invs_sent += 1;
                        fx.push(Effect::Send {
                            to,
                            msg: Msg::Inv {
                                key,
                                ts: p.ts,
                                value: p.value.clone(),
                                kind: p.kind,
                                epoch,
                            },
                        });
                    }
                }
                fx.push(Effect::ArmTimer { key });
            } else if e.state == KeyState::Invalid && e.has_waiting() {
                // The coordinator that invalidated this key may be the node
                // that just failed; the timer drives a replay if so.
                fx.push(Effect::ArmTimer { key });
            }
            // A removed replica may have been the only missing ACK.
            self.pump(key, fx);
        }
    }
}

impl ReplicaProtocol for HermesNode {
    type Msg = Msg;

    fn node_id(&self) -> NodeId {
        HermesNode::node_id(self)
    }

    fn on_client_op(&mut self, op: OpId, key: Key, cop: ClientOp, fx: &mut Fx) {
        HermesNode::on_client_op(self, op, key, cop, fx);
    }

    fn on_message(&mut self, from: NodeId, msg: Msg, fx: &mut Fx) {
        HermesNode::on_message(self, from, msg, fx);
    }

    fn on_timer(&mut self, key: Key, fx: &mut Fx) {
        HermesNode::on_mlt_timeout(self, key, fx);
    }

    fn on_membership_update(&mut self, view: MembershipView, fx: &mut Fx) {
        HermesNode::on_membership_update(self, view, fx);
    }

    fn msg_wire_size(msg: &Msg) -> usize {
        msg.wire_size()
    }

    fn capabilities() -> Capabilities {
        // Paper Table 2, HermesKV row.
        Capabilities {
            name: "Hermes",
            local_reads: true,
            leases: "one per RM",
            consistency: "Lin",
            write_concurrency: "inter-key",
            write_latency_rtts: "1",
            decentralized_writes: true,
        }
    }
}
