/// Tunable behaviour of a Hermes replica (protocol-level switches).
///
/// The defaults run the protocol exactly as §3.2 of the paper describes, with
/// RMW support (§3.6) and the VAL-elision optimization \[O1\] enabled. The
/// fairness \[O2\] and ACK-broadcast \[O3\] optimizations are off by default
/// and can be enabled for ablation studies.
///
/// # Examples
///
/// ```
/// use hermes_core::ProtocolConfig;
///
/// let cfg = ProtocolConfig::default();
/// assert!(cfg.rmw_support);
/// assert_eq!(cfg.write_version_increment(), 2);
///
/// let ablation = ProtocolConfig {
///     broadcast_acks: true, // O3: unblock follower reads after ACKs
///     ..ProtocolConfig::default()
/// };
/// assert!(ablation.broadcast_acks);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProtocolConfig {
    /// Enable read-modify-writes (paper §3.6).
    ///
    /// When enabled, plain writes advance key versions by two and RMWs by
    /// one, so racing writes always beat racing RMWs. When disabled, writes
    /// advance versions by one (the §3.2 write-only protocol).
    pub rmw_support: bool,

    /// \[O1\] Elide the VAL broadcast when the committing update has already
    /// been superseded by a higher-timestamped one (coordinator was in the
    /// `Trans` state), saving network bandwidth (paper §3.3).
    pub elide_superseded_val: bool,

    /// \[O2\] Number of virtual node ids per physical node (paper §3.3).
    ///
    /// `1` disables the optimization. With `k > 1`, each node cycles through
    /// `k` globally unique cids for its writes, so concurrent-write
    /// tie-breaking does not systematically favour high-numbered nodes.
    pub virtual_ids_per_node: u32,

    /// \[O3\] Followers broadcast ACKs to all replicas instead of unicasting
    /// to the coordinator; a follower then validates a key as soon as it has
    /// seen ACKs from every other live replica, halving read-blocking
    /// latency and making VAL broadcasts unnecessary (paper §3.3).
    pub broadcast_acks: bool,
}

impl ProtocolConfig {
    /// Spacing between virtual node ids of different physical nodes.
    ///
    /// Virtual id `k` of node `i` is `i + k * VID_STRIDE`; with the stride
    /// equal to the maximum group size (64 nodes, the `NodeSet` capacity) the
    /// id sets of distinct nodes can never overlap, which is the correctness
    /// requirement of \[O2\].
    pub const VID_STRIDE: u32 = 64;

    /// Version increment used by plain writes (rule CTS, §3.6).
    #[inline]
    pub fn write_version_increment(&self) -> u64 {
        if self.rmw_support {
            2
        } else {
            1
        }
    }

    /// Version increment used by RMWs (always one).
    #[inline]
    pub fn rmw_version_increment(&self) -> u64 {
        1
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            rmw_support: true,
            elide_superseded_val: true,
            virtual_ids_per_node: 1,
            broadcast_acks: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_protocol() {
        let cfg = ProtocolConfig::default();
        assert!(cfg.rmw_support);
        assert!(cfg.elide_superseded_val);
        assert_eq!(cfg.virtual_ids_per_node, 1);
        assert!(!cfg.broadcast_acks);
    }

    #[test]
    fn write_increment_depends_on_rmw_support() {
        let mut cfg = ProtocolConfig::default();
        assert_eq!(cfg.write_version_increment(), 2);
        assert_eq!(cfg.rmw_version_increment(), 1);
        cfg.rmw_support = false;
        assert_eq!(cfg.write_version_increment(), 1);
    }
}
