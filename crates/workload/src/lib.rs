//! # hermes-workload — YCSB-style workload generation
//!
//! The paper's evaluation drives the replicated KVS with uniform and skewed
//! (zipfian, exponent 0.99 "as in YCSB") accesses over one million keys at
//! write ratios from 0% to 100% (§5.2, §6). This crate generates those
//! request streams deterministically:
//!
//! * [`Zipfian`] — Gray et al.'s constant-time zipfian sampler (the YCSB
//!   algorithm), validated against the analytic distribution;
//! * [`KeyChooser`] — uniform or zipfian key selection;
//! * [`Workload`] — a full request stream: key choice, read/write/RMW mix,
//!   and value payloads of configurable size;
//! * [`run_closed_loop`] — a closed-loop multi-request driver over any
//!   [`PipelinedKv`] service (the paper's outstanding-requests-per-session
//!   client model, §5.2);
//! * [`BankWorkload`] — the bank-transfer stream driving the multi-key
//!   transaction subsystem (`hermes-txn`), with the conserved-total
//!   invariant as its built-in oracle.
//!
//! # Examples
//!
//! ```
//! use hermes_workload::{Workload, WorkloadConfig};
//!
//! let mut wl = Workload::new(WorkloadConfig {
//!     keys: 1000,
//!     write_ratio: 0.05,
//!     zipf_theta: Some(0.99),
//!     ..WorkloadConfig::default()
//! }, 42);
//! let op = wl.next_op();
//! assert!(op.key.0 < 1000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bank;
mod driver;

pub use bank::{BankConfig, BankWorkload};
pub use driver::{run_closed_loop, ClosedLoopConfig, ClosedLoopReport, PipelinedKv};

use hermes_common::{ClientOp, Key, RmwOp, Value};
use hermes_sim::rng::Rng;

/// Key-selection distributions.
#[derive(Clone, Debug)]
pub enum KeyChooser {
    /// Uniform over `0..n`.
    Uniform {
        /// Key-space size.
        n: u64,
    },
    /// Zipfian over `0..n` (popular keys get low ranks, then scattered over
    /// the key space by a multiplicative hash, like YCSB's scrambled
    /// zipfian).
    Zipfian(Zipfian),
}

impl KeyChooser {
    /// Uniform chooser over `n` keys.
    pub fn uniform(n: u64) -> Self {
        KeyChooser::Uniform { n }
    }

    /// Zipfian chooser over `n` keys with exponent `theta`.
    pub fn zipfian(n: u64, theta: f64) -> Self {
        KeyChooser::Zipfian(Zipfian::new(n, theta))
    }

    /// Draws the next key.
    pub fn next_key(&mut self, rng: &mut Rng) -> Key {
        match self {
            KeyChooser::Uniform { n } => Key(rng.gen_range(*n)),
            KeyChooser::Zipfian(z) => Key(z.sample(rng)),
        }
    }

    /// The key-space size.
    pub fn key_count(&self) -> u64 {
        match self {
            KeyChooser::Uniform { n } => *n,
            KeyChooser::Zipfian(z) => z.n,
        }
    }
}

/// Gray et al.'s zipfian generator (the algorithm YCSB uses), sampling ranks
/// in `0..n` with P(rank k) ∝ 1/(k+1)^θ.
///
/// Construction is O(n) (computing the harmonic normalizer ζ(n, θ));
/// sampling is O(1).
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    zetan: f64,
    alpha: f64,
    eta: f64,
}

impl Zipfian {
    /// Creates a sampler over `n` items with exponent `theta` (0 < θ < 1;
    /// the paper uses 0.99).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs a non-empty key space");
        assert!(
            (0.0..1.0).contains(&theta) && theta > 0.0,
            "theta must be in (0,1)"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            zetan,
            alpha,
            eta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Samples a rank in `0..n` (rank 0 is the most popular).
    pub fn sample_rank(&self, rng: &mut Rng) -> u64 {
        let u = rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Samples a key: the rank scattered over the key space by a bijective
    /// multiplicative hash (YCSB's "scrambled" zipfian), so popular keys are
    /// not clustered at low ids.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        // Splitmix-style scatter on u64, reduced modulo n. The reduction is
        // not bijective for non-power-of-two n, but collisions only remap a
        // rank to another key deterministically, preserving the skew.
        self.key_of_rank(self.sample_rank(rng))
    }

    /// The key id that popularity rank `rank` maps to (the scrambling
    /// bijection used by [`Zipfian::sample`]). Lets cost models enumerate
    /// the hot key set.
    pub fn key_of_rank(&self, rank: u64) -> u64 {
        let mut x = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 31;
        x % self.n
    }

    /// The fraction of accesses that hit the `k` most popular ranks
    /// (analytic; used by the cost model's cache-locality factor).
    pub fn hot_fraction(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        Self::zeta(k, self.theta) / self.zetan
    }
}

/// One generated request.
#[derive(Clone, Debug)]
pub struct Op {
    /// Target key.
    pub key: Key,
    /// The operation (read / write / RMW).
    pub op: ClientOp,
}

/// Workload parameters (paper §5.2: 1M keys, 8 B keys / 32 B values,
/// uniform or zipf-0.99, write ratio swept from 1% to 100%).
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of keys.
    pub keys: u64,
    /// Fraction of operations that are updates (writes + RMWs).
    pub write_ratio: f64,
    /// Fraction of *updates* that are RMWs (fetch-add); the paper's
    /// throughput workloads use plain writes only (0.0).
    pub rmw_fraction: f64,
    /// Value payload size in bytes.
    pub value_size: usize,
    /// Zipfian exponent; `None` selects uniform access.
    pub zipf_theta: Option<f64>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            keys: 1_000_000,
            write_ratio: 0.05,
            rmw_fraction: 0.0,
            value_size: 32,
            zipf_theta: None,
        }
    }
}

/// A deterministic request-stream generator.
#[derive(Debug)]
pub struct Workload {
    chooser: KeyChooser,
    cfg: WorkloadConfig,
    rng: Rng,
    payload: Value,
    counter: u64,
}

impl Workload {
    /// Creates a generator with the given parameters and seed.
    pub fn new(cfg: WorkloadConfig, seed: u64) -> Self {
        let chooser = match cfg.zipf_theta {
            Some(theta) => KeyChooser::zipfian(cfg.keys, theta),
            None => KeyChooser::uniform(cfg.keys),
        };
        Workload {
            chooser,
            payload: Value::filled(0xA5, cfg.value_size),
            cfg,
            rng: Rng::seeded(seed),
            counter: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Generates the next request.
    pub fn next_op(&mut self) -> Op {
        let key = self.chooser.next_key(&mut self.rng);
        self.counter += 1;
        let op = if self.rng.gen_bool(self.cfg.write_ratio) {
            if self.cfg.rmw_fraction > 0.0 && self.rng.gen_bool(self.cfg.rmw_fraction) {
                ClientOp::Rmw(RmwOp::FetchAdd { delta: 1 })
            } else {
                // Cheap distinct payloads: same allocation, values matter
                // only for correctness tests which use their own workloads.
                ClientOp::Write(self.payload.clone())
            }
        } else {
            ClientOp::Read
        };
        Op { key, op }
    }

    /// Derives an independent stream (e.g. one per client session).
    pub fn fork(&mut self) -> Workload {
        let seed = self.rng.next_u64();
        Workload::new(self.cfg.clone(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_key_space_evenly() {
        let mut chooser = KeyChooser::uniform(100);
        let mut rng = Rng::seeded(1);
        let mut counts = vec![0u64; 100];
        let n = 100_000;
        for _ in 0..n {
            counts[chooser.next_key(&mut rng).0 as usize] += 1;
        }
        let expect = n as f64 / 100.0;
        for (k, &c) in counts.iter().enumerate() {
            let rel = (c as f64 - expect).abs() / expect;
            assert!(rel < 0.2, "key {k}: count {c} too far from {expect}");
        }
    }

    #[test]
    fn zipfian_matches_analytic_head_probabilities() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = Rng::seeded(2);
        let n = 200_000;
        let mut head = [0u64; 3];
        for _ in 0..n {
            let r = z.sample_rank(&mut rng);
            if r < 3 {
                head[r as usize] += 1;
            }
        }
        // P(rank k) = (1/(k+1)^θ)/ζ(n,θ). Gray's algorithm is exact for
        // ranks 0 and 1 and uses a continuous approximation beyond (same as
        // YCSB), so rank 2 gets a looser tolerance.
        let zetan: f64 = (1..=1000u64).map(|i| 1.0 / (i as f64).powf(0.99)).sum();
        for (k, &c) in head.iter().enumerate() {
            let p_expect = (1.0 / ((k + 1) as f64).powf(0.99)) / zetan;
            let p_got = c as f64 / n as f64;
            let rel = (p_got - p_expect).abs() / p_expect;
            let tol = if k < 2 { 0.1 } else { 0.3 };
            assert!(
                rel < tol,
                "rank {k}: p {p_got:.4} vs analytic {p_expect:.4}"
            );
        }
    }

    #[test]
    fn zipfian_is_heavily_skewed_at_theta_099() {
        let z = Zipfian::new(1_000_000, 0.99);
        // Top 1000 of 1M keys draw a large constant share of accesses.
        let hot = z.hot_fraction(1000);
        assert!(hot > 0.45 && hot < 0.60, "hot fraction {hot}");
        assert!((z.hot_fraction(1_000_000) - 1.0).abs() < 1e-12);
        assert!(z.hot_fraction(1) > 0.05);
    }

    #[test]
    fn zipfian_sample_stays_in_range_and_scatters() {
        let z = Zipfian::new(1000, 0.99);
        let mut rng = Rng::seeded(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!(k < 1000);
            seen.insert(k);
        }
        // The scrambles hot-spot is not key 0.
        assert!(seen.len() > 300, "zipf should still touch many keys");
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipfian_rejects_bad_theta() {
        Zipfian::new(10, 1.5);
    }

    #[test]
    fn write_ratio_is_respected() {
        let mut wl = Workload::new(
            WorkloadConfig {
                keys: 100,
                write_ratio: 0.2,
                ..WorkloadConfig::default()
            },
            7,
        );
        let n = 50_000;
        let writes = (0..n).filter(|_| wl.next_op().op.is_update()).count();
        let ratio = writes as f64 / n as f64;
        assert!((ratio - 0.2).abs() < 0.01, "write ratio {ratio}");
    }

    #[test]
    fn rmw_fraction_produces_rmws() {
        let mut wl = Workload::new(
            WorkloadConfig {
                keys: 100,
                write_ratio: 1.0,
                rmw_fraction: 0.5,
                ..WorkloadConfig::default()
            },
            7,
        );
        let n = 10_000;
        let rmws = (0..n)
            .filter(|_| matches!(wl.next_op().op, ClientOp::Rmw(_)))
            .count();
        let ratio = rmws as f64 / n as f64;
        assert!((ratio - 0.5).abs() < 0.05, "rmw ratio {ratio}");
    }

    #[test]
    fn value_size_is_respected() {
        let mut wl = Workload::new(
            WorkloadConfig {
                keys: 10,
                write_ratio: 1.0,
                value_size: 256,
                ..WorkloadConfig::default()
            },
            1,
        );
        match wl.next_op().op {
            ClientOp::Write(v) => assert_eq!(v.len(), 256),
            other => panic!("expected write, got {other:?}"),
        }
    }

    #[test]
    fn same_seed_same_stream_forks_differ() {
        let cfg = WorkloadConfig {
            keys: 1000,
            ..WorkloadConfig::default()
        };
        let mut a = Workload::new(cfg.clone(), 5);
        let mut b = Workload::new(cfg.clone(), 5);
        for _ in 0..100 {
            assert_eq!(a.next_op().key, b.next_op().key);
        }
        let mut fork = a.fork();
        let diverges = (0..100).any(|_| a.next_op().key != fork.next_op().key);
        assert!(diverges);
    }
}
