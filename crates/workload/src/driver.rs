//! Closed-loop driving of a pipelined KV service.
//!
//! The paper's throughput experiments run closed-loop clients with several
//! requests in flight per session (§5.2: "each worker keeps a number of
//! outstanding requests"); pipelining is what lets a single session saturate
//! a replica whose writes take a full round trip. [`run_closed_loop`]
//! reproduces that loop over any [`PipelinedKv`] — the threaded cluster's
//! client sessions implement it, and tests can implement it with mocks.

use crate::Workload;
use hermes_common::{ClientOp, Key, Reply};

/// A KV endpoint accepting many operations in flight.
///
/// `submit` must not block waiting for the submitted operation's own
/// completion (it may block briefly for flow-control backpressure — e.g. a
/// credit-bounded session holding a submission until an *earlier* op
/// completes); `wait_any` blocks until *some* submitted operation completes
/// (not necessarily the oldest — an inter-key-concurrent service completes
/// operations out of order).
pub trait PipelinedKv {
    /// Handle naming one in-flight operation.
    type Ticket;

    /// Starts an operation; returns immediately.
    fn submit(&mut self, key: Key, cop: ClientOp) -> Self::Ticket;

    /// Blocks until any in-flight operation completes; `None` signals the
    /// service is unreachable (shutdown or timeout) and the loop should
    /// stop.
    fn wait_any(&mut self) -> Option<Reply>;

    /// Number of submitted-but-uncompleted operations.
    fn in_flight(&self) -> usize;
}

/// Parameters of one closed-loop run.
#[derive(Clone, Copy, Debug)]
pub struct ClosedLoopConfig {
    /// Total operations to submit.
    pub ops: u64,
    /// Target number of operations in flight (the pipeline depth).
    pub depth: usize,
}

impl Default for ClosedLoopConfig {
    fn default() -> Self {
        ClosedLoopConfig {
            ops: 1000,
            depth: 8,
        }
    }
}

/// Counters from a closed-loop run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClosedLoopReport {
    /// Operations submitted.
    pub submitted: u64,
    /// Operations that completed with any reply.
    pub completed: u64,
    /// Completions that took effect ([`Reply::is_ok`]).
    pub ok: u64,
    /// RMWs that aborted under conflict (retryable, paper §3.6).
    pub aborted: u64,
}

/// Runs `cfg.ops` operations from `wl` through `kv`, keeping `cfg.depth` in
/// flight: every completion immediately funds the next submission, the
/// classic closed loop. Returns early (with `completed < submitted`) only
/// if [`PipelinedKv::wait_any`] reports the service gone.
pub fn run_closed_loop<S: PipelinedKv>(
    kv: &mut S,
    wl: &mut Workload,
    cfg: &ClosedLoopConfig,
) -> ClosedLoopReport {
    let depth = cfg.depth.max(1) as u64;
    let mut report = ClosedLoopReport::default();
    while report.submitted < cfg.ops && report.submitted < depth {
        let op = wl.next_op();
        kv.submit(op.key, op.op);
        report.submitted += 1;
    }
    while report.completed < report.submitted {
        let Some(reply) = kv.wait_any() else {
            break;
        };
        report.completed += 1;
        if reply.is_ok() {
            report.ok += 1;
        } else if reply == Reply::RmwAborted {
            report.aborted += 1;
        }
        if report.submitted < cfg.ops {
            let op = wl.next_op();
            kv.submit(op.key, op.op);
            report.submitted += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadConfig;
    use std::collections::VecDeque;

    /// A mock service completing every op instantly, tracking the maximum
    /// observed pipeline depth.
    struct InstantKv {
        queue: VecDeque<Reply>,
        max_in_flight: usize,
    }

    impl PipelinedKv for InstantKv {
        type Ticket = ();

        fn submit(&mut self, _key: Key, cop: ClientOp) {
            self.queue.push_back(match cop {
                ClientOp::Read => Reply::ReadOk(hermes_common::Value::EMPTY),
                ClientOp::Write(_) => Reply::WriteOk,
                ClientOp::Rmw(_) => Reply::RmwAborted,
            });
            self.max_in_flight = self.max_in_flight.max(self.queue.len());
        }

        fn wait_any(&mut self) -> Option<Reply> {
            self.queue.pop_front()
        }

        fn in_flight(&self) -> usize {
            self.queue.len()
        }
    }

    fn workload(write_ratio: f64, rmw_fraction: f64) -> Workload {
        Workload::new(
            WorkloadConfig {
                keys: 64,
                write_ratio,
                rmw_fraction,
                ..WorkloadConfig::default()
            },
            7,
        )
    }

    #[test]
    fn completes_every_op_and_respects_depth() {
        let mut kv = InstantKv {
            queue: VecDeque::new(),
            max_in_flight: 0,
        };
        let report = run_closed_loop(
            &mut kv,
            &mut workload(0.5, 0.0),
            &ClosedLoopConfig { ops: 500, depth: 8 },
        );
        assert_eq!(report.submitted, 500);
        assert_eq!(report.completed, 500);
        assert_eq!(report.ok, 500);
        assert_eq!(report.aborted, 0);
        assert!(kv.max_in_flight <= 8, "depth {}", kv.max_in_flight);
        assert_eq!(kv.in_flight(), 0, "pipeline drained");
    }

    #[test]
    fn counts_aborts_separately() {
        let mut kv = InstantKv {
            queue: VecDeque::new(),
            max_in_flight: 0,
        };
        let report = run_closed_loop(
            &mut kv,
            &mut workload(1.0, 1.0), // all RMWs → all abort in the mock
            &ClosedLoopConfig { ops: 100, depth: 4 },
        );
        assert_eq!(report.completed, 100);
        assert_eq!(report.ok, 0);
        assert_eq!(report.aborted, 100);
    }

    #[test]
    fn short_runs_never_overfill_the_pipeline() {
        let mut kv = InstantKv {
            queue: VecDeque::new(),
            max_in_flight: 0,
        };
        let report = run_closed_loop(
            &mut kv,
            &mut workload(0.0, 0.0),
            &ClosedLoopConfig { ops: 3, depth: 64 },
        );
        assert_eq!(report.submitted, 3);
        assert_eq!(report.completed, 3);
        assert!(kv.max_in_flight <= 3);
    }

    /// A service that dies after `alive` completions.
    struct DyingKv {
        alive: usize,
        pending: usize,
    }

    impl PipelinedKv for DyingKv {
        type Ticket = ();

        fn submit(&mut self, _key: Key, _cop: ClientOp) {
            self.pending += 1;
        }

        fn wait_any(&mut self) -> Option<Reply> {
            if self.alive == 0 {
                return None;
            }
            self.alive -= 1;
            self.pending -= 1;
            Some(Reply::WriteOk)
        }

        fn in_flight(&self) -> usize {
            self.pending
        }
    }

    #[test]
    fn service_loss_ends_the_loop_without_hanging() {
        let mut kv = DyingKv {
            alive: 10,
            pending: 0,
        };
        let report = run_closed_loop(
            &mut kv,
            &mut workload(1.0, 0.0),
            &ClosedLoopConfig {
                ops: 1000,
                depth: 4,
            },
        );
        assert_eq!(report.completed, 10);
        assert!(report.submitted < 1000, "loop must stop early");
    }
}
