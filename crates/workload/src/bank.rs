//! The bank-transfer workload: the acceptance workload of the multi-key
//! transaction subsystem (`hermes-txn`, DESIGN.md §6).
//!
//! A fixed set of accounts is funded once; concurrent clients then move
//! money between random account pairs with `Transfer` transactions and
//! audit the books with `MultiGet` snapshots. Two global properties make
//! it a sharp correctness probe:
//!
//! * **conservation** — the sum of all balances equals the initial total
//!   at every consistent snapshot, so any torn (partially applied)
//!   transfer is caught by a single audit;
//! * **serializability** — the recorded per-transaction observations
//!   (prior balances, snapshots) must admit a sequential order
//!   (`hermes_txn::check_txns_serializable`).

use hermes_common::{Key, TxnOp, Value};
use hermes_sim::rng::Rng;

/// Shape of a bank workload.
#[derive(Clone, Copy, Debug)]
pub struct BankConfig {
    /// Number of accounts.
    pub accounts: u64,
    /// First account's key; accounts are `base..base + accounts`
    /// (sequential keys scatter across shard lanes via the key hash).
    pub account_base: u64,
    /// Balance every account starts with.
    pub initial_balance: u64,
    /// Largest single transfer (amounts are drawn from `1..=max`).
    pub max_transfer: u64,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            accounts: 8,
            account_base: 0,
            initial_balance: 1_000,
            max_transfer: 100,
        }
    }
}

impl BankConfig {
    /// The key of account `i`.
    pub fn account_key(&self, i: u64) -> Key {
        Key(self.account_base + i)
    }

    /// All account keys.
    pub fn account_keys(&self) -> Vec<Key> {
        (0..self.accounts).map(|i| self.account_key(i)).collect()
    }

    /// The one-shot funding transaction establishing every balance.
    pub fn funding(&self) -> TxnOp {
        TxnOp::MultiPut(
            self.account_keys()
                .into_iter()
                .map(|k| (k, Value::from_u64(self.initial_balance)))
                .collect(),
        )
    }

    /// A full-book audit snapshot.
    pub fn audit(&self) -> TxnOp {
        TxnOp::MultiGet(self.account_keys())
    }

    /// The invariant: total money in the system after funding.
    pub fn total(&self) -> u64 {
        self.accounts * self.initial_balance
    }

    /// Sums an audit snapshot and checks conservation.
    ///
    /// # Errors
    ///
    /// Describes the violation when the snapshot total differs from
    /// [`BankConfig::total`].
    pub fn check_conserved(&self, snapshot: &[(Key, Value)]) -> Result<u64, String> {
        let sum: u64 = snapshot.iter().map(|(_, v)| v.to_u64().unwrap_or(0)).sum();
        if sum == self.total() {
            Ok(sum)
        } else {
            Err(format!(
                "conservation violated: audited {} vs funded {} over {:?}",
                sum,
                self.total(),
                snapshot
            ))
        }
    }
}

/// Deterministic stream of transfer transactions over a [`BankConfig`].
#[derive(Debug)]
pub struct BankWorkload {
    cfg: BankConfig,
    rng: Rng,
}

impl BankWorkload {
    /// A transfer stream with the given seed (one per client session).
    pub fn new(cfg: BankConfig, seed: u64) -> Self {
        BankWorkload {
            cfg,
            rng: Rng::seeded(seed),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &BankConfig {
        &self.cfg
    }

    /// The next transfer: two distinct random accounts, amount in
    /// `1..=max_transfer`.
    pub fn next_transfer(&mut self) -> TxnOp {
        let a = self.rng.gen_range(self.cfg.accounts);
        let mut b = self.rng.gen_range(self.cfg.accounts - 1);
        if b >= a {
            b += 1;
        }
        TxnOp::Transfer {
            debit: self.cfg.account_key(a),
            credit: self.cfg.account_key(b),
            amount: 1 + self.rng.gen_range(self.cfg.max_transfer),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn funding_and_audit_cover_every_account() {
        let cfg = BankConfig {
            accounts: 4,
            account_base: 100,
            initial_balance: 10,
            max_transfer: 3,
        };
        assert_eq!(cfg.total(), 40);
        let TxnOp::MultiPut(puts) = cfg.funding() else {
            panic!("funding is a MultiPut");
        };
        assert_eq!(puts.len(), 4);
        assert_eq!(puts[0], (Key(100), Value::from_u64(10)));
        let TxnOp::MultiGet(keys) = cfg.audit() else {
            panic!("audit is a MultiGet");
        };
        assert_eq!(keys, vec![Key(100), Key(101), Key(102), Key(103)]);
    }

    #[test]
    fn conservation_check_accepts_and_rejects() {
        let cfg = BankConfig {
            accounts: 2,
            account_base: 0,
            initial_balance: 5,
            max_transfer: 1,
        };
        let good = vec![(Key(0), Value::from_u64(7)), (Key(1), Value::from_u64(3))];
        assert_eq!(cfg.check_conserved(&good), Ok(10));
        let bad = vec![(Key(0), Value::from_u64(7)), (Key(1), Value::from_u64(4))];
        assert!(cfg.check_conserved(&bad).is_err());
    }

    #[test]
    fn transfers_pick_distinct_accounts_and_bounded_amounts() {
        let cfg = BankConfig::default();
        let mut wl = BankWorkload::new(cfg, 42);
        for _ in 0..1000 {
            let TxnOp::Transfer {
                debit,
                credit,
                amount,
            } = wl.next_transfer()
            else {
                panic!("bank workload generates transfers");
            };
            assert_ne!(debit, credit);
            assert!((1..=cfg.max_transfer).contains(&amount));
            assert!(debit.0 < cfg.accounts && credit.0 < cfg.accounts);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = BankWorkload::new(BankConfig::default(), 9);
        let mut b = BankWorkload::new(BankConfig::default(), 9);
        for _ in 0..50 {
            assert_eq!(a.next_transfer(), b.next_transfer());
        }
    }
}
