//! # hermes-txn — cross-shard multi-key transactions over Hermes
//!
//! Hermes is deliberately single-key (paper §7): every operation involves
//! exactly one key, which is what buys inter-key concurrency and local
//! reads. This crate opens the multi-key workload class — transfers,
//! swaps, consistent multi-get snapshots — *without touching the verified
//! single-key core*: a transaction is coordinated entirely client-side as
//! a deterministic sequence of ordinary Hermes operations, using the CAS
//! lock-service primitive from the paper's own introduction as the commit
//! mechanism (DESIGN.md §6).
//!
//! The pieces:
//!
//! * [`TxnMachine`] — the sans-io coordinator: lock (sorted CAS
//!   acquisition in the reserved [`lock_key`] namespace) → read/validate →
//!   apply → unlock, with bounded conflict retries and idempotent resume
//!   after transport loss;
//! * [`check_txns_serializable`] — the transaction-granularity analogue of
//!   the Wing & Gong linearizability checker: validates a concurrent
//!   multi-key history against a sequential execution;
//! * the request/reply vocabulary lives in `hermes_common::txn`
//!   ([`TxnOp`], [`TxnReply`], [`TxnAbort`]) so every layer — wire codec,
//!   runtimes, workloads — shares it without depending on this crate.
//!
//! Drivers live where the transports are: `hermes_replica::ClientSession::txn`
//! fans sub-operations across shard lanes (in-process) or a TCP connection
//! (remote), and the `hermesd` client port accepts whole transactions as
//! one RPC (`hermes_wings::client`).
//!
//! # Examples
//!
//! Driving a machine by hand against a toy sequential KV:
//!
//! ```
//! use hermes_common::{ClientOp, Key, Reply, RmwOp, TxnOp, TxnReply, Value};
//! use hermes_txn::{TxnConfig, TxnMachine, TxnToken};
//! use std::collections::HashMap;
//!
//! let mut kv: HashMap<Key, Value> = HashMap::new();
//! kv.insert(Key(1), Value::from_u64(10));
//! let op = TxnOp::Transfer { debit: Key(1), credit: Key(2), amount: 4 };
//! let mut m = TxnMachine::new(TxnToken::new(9, 0), op, TxnConfig::default());
//! let mut subs = Vec::new();
//! while m.outcome().is_none() {
//!     m.poll(&mut subs);
//!     for s in subs.drain(..) {
//!         let current = kv.get(&s.key).cloned().unwrap_or(Value::EMPTY);
//!         let reply = match &s.cop {
//!             ClientOp::Read => Reply::ReadOk(current),
//!             ClientOp::Write(v) => { kv.insert(s.key, v.clone()); Reply::WriteOk }
//!             ClientOp::Rmw(RmwOp::CompareAndSwap { expect, new }) => {
//!                 if current == *expect { kv.insert(s.key, new.clone()); Reply::RmwOk { prior: current } }
//!                 else { Reply::CasFailed { current } }
//!             }
//!             _ => unreachable!(),
//!         };
//!         m.on_reply(s.tag, reply);
//!     }
//! }
//! assert!(matches!(m.outcome(), Some(TxnReply::Committed { .. })));
//! assert_eq!(kv[&Key(1)].to_u64(), Some(6));
//! assert_eq!(kv[&Key(2)].to_u64(), Some(4));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod checker;
mod machine;

pub use checker::{check_txns_serializable, leaked_lock, TxnObs};
pub use machine::{
    conflict_backoff, is_lock_key, lock_key, process_nonce, SubOp, TxnConfig, TxnMachine, TxnToken,
    LOCK_BASE,
};

// The shared vocabulary, re-exported for convenience.
pub use hermes_common::{TxnAbort, TxnOp, TxnReply};

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::{ClientOp, Key, Reply, RmwOp, Value};
    use std::collections::HashMap;

    /// A toy sequential KV with Hermes reply semantics.
    #[derive(Default)]
    struct MockKv {
        map: HashMap<Key, Value>,
        /// Keys whose next CAS artificially answers `RmwAborted` (the
        /// advisory abort of paper §3.6) before behaving normally.
        abort_next_cas: Vec<Key>,
        /// When set, every reply is `NotOperational` (dead transport).
        dead: bool,
    }

    impl MockKv {
        fn get(&self, key: Key) -> Value {
            self.map.get(&key).cloned().unwrap_or(Value::EMPTY)
        }

        fn serve(&mut self, sub: &SubOp) -> Reply {
            if self.dead {
                return Reply::NotOperational;
            }
            let current = self.get(sub.key);
            match &sub.cop {
                ClientOp::Read => Reply::ReadOk(current),
                ClientOp::Write(v) => {
                    self.map.insert(sub.key, v.clone());
                    Reply::WriteOk
                }
                ClientOp::Rmw(RmwOp::CompareAndSwap { expect, new }) => {
                    if let Some(at) = self.abort_next_cas.iter().position(|&k| k == sub.key) {
                        self.abort_next_cas.remove(at);
                        return Reply::RmwAborted;
                    }
                    if current == *expect {
                        self.map.insert(sub.key, new.clone());
                        Reply::RmwOk { prior: current }
                    } else {
                        Reply::CasFailed { current }
                    }
                }
                ClientOp::Rmw(_) => unreachable!("coordinator only issues CAS RMWs"),
            }
        }
    }

    fn drive(m: &mut TxnMachine, kv: &mut MockKv) {
        let mut subs = Vec::new();
        let mut budget = 10_000;
        while m.outcome().is_none() && !m.in_doubt() {
            m.poll(&mut subs);
            if subs.is_empty() {
                break;
            }
            for s in subs.drain(..) {
                let reply = kv.serve(&s);
                m.on_reply(s.tag, reply);
            }
            budget -= 1;
            assert!(budget > 0, "machine did not terminate");
        }
    }

    fn token(serial: u64) -> TxnToken {
        TxnToken {
            nonce: 1,
            owner: 7,
            serial,
        }
    }

    fn committed_values(m: &TxnMachine) -> Vec<(Key, Value)> {
        match m.outcome() {
            Some(TxnReply::Committed { values }) => values.clone(),
            other => panic!("expected commit, got {other:?}"),
        }
    }

    #[test]
    fn transfer_moves_funds_and_releases_locks() {
        let mut kv = MockKv::default();
        kv.map.insert(Key(1), Value::from_u64(100));
        let mut m = TxnMachine::new(
            token(0),
            TxnOp::Transfer {
                debit: Key(1),
                credit: Key(2),
                amount: 30,
            },
            TxnConfig::default(),
        );
        drive(&mut m, &mut kv);
        let values = committed_values(&m);
        assert_eq!(values[0], (Key(1), Value::from_u64(100)));
        assert_eq!(values[1], (Key(2), Value::from_u64(0)));
        assert_eq!(kv.get(Key(1)).to_u64(), Some(70));
        assert_eq!(kv.get(Key(2)).to_u64(), Some(30));
        assert!(kv.get(lock_key(Key(1))).is_empty(), "lock 1 released");
        assert!(kv.get(lock_key(Key(2))).is_empty(), "lock 2 released");
    }

    #[test]
    fn insufficient_funds_aborts_without_any_write() {
        let mut kv = MockKv::default();
        kv.map.insert(Key(1), Value::from_u64(5));
        let mut m = TxnMachine::new(
            token(1),
            TxnOp::Transfer {
                debit: Key(1),
                credit: Key(2),
                amount: 30,
            },
            TxnConfig::default(),
        );
        drive(&mut m, &mut kv);
        assert_eq!(
            m.outcome(),
            Some(&TxnReply::Aborted(TxnAbort::InsufficientFunds))
        );
        assert_eq!(kv.get(Key(1)).to_u64(), Some(5), "debit untouched");
        assert!(kv.get(Key(2)).is_empty(), "credit untouched");
        assert!(kv.get(lock_key(Key(1))).is_empty(), "locks released");
        assert!(kv.get(lock_key(Key(2))).is_empty());
    }

    #[test]
    fn multiget_snapshots_and_multiput_installs() {
        let mut kv = MockKv::default();
        let puts = TxnOp::MultiPut(vec![
            (Key(3), Value::from_u64(33)),
            (Key(4), Value::from_u64(44)),
        ]);
        let mut m = TxnMachine::new(token(2), puts, TxnConfig::default());
        drive(&mut m, &mut kv);
        assert!(committed_values(&m).is_empty());

        let mut m = TxnMachine::new(
            token(3),
            TxnOp::MultiGet(vec![Key(4), Key(3), Key(5)]),
            TxnConfig::default(),
        );
        drive(&mut m, &mut kv);
        // Snapshot comes back in sorted key order; unwritten keys read empty.
        assert_eq!(
            committed_values(&m),
            vec![
                (Key(3), Value::from_u64(33)),
                (Key(4), Value::from_u64(44)),
                (Key(5), Value::EMPTY),
            ]
        );
    }

    #[test]
    fn conflict_retries_then_aborts_when_budget_exhausts() {
        let mut kv = MockKv::default();
        // Key 2's lock is held by someone else, forever.
        kv.map.insert(
            lock_key(Key(2)),
            TxnToken {
                nonce: 1,
                owner: 99,
                serial: 0,
            }
            .value(),
        );
        kv.map.insert(Key(1), Value::from_u64(10));
        let mut m = TxnMachine::new(
            token(4),
            TxnOp::Transfer {
                debit: Key(1),
                credit: Key(2),
                amount: 1,
            },
            TxnConfig { max_attempts: 3 },
        );
        drive(&mut m, &mut kv);
        assert_eq!(m.outcome(), Some(&TxnReply::Aborted(TxnAbort::Conflict)));
        assert_eq!(m.attempts(), 3);
        // The lock it *did* get (key 1, first in sorted order) was released
        // on every attempt; no data was written.
        assert!(kv.get(lock_key(Key(1))).is_empty(), "held lock released");
        assert_eq!(kv.get(Key(1)).to_u64(), Some(10));
        assert!(kv.get(Key(2)).is_empty());
    }

    #[test]
    fn advisory_rmw_abort_is_reissued_until_definitive() {
        let mut kv = MockKv::default();
        kv.map.insert(Key(1), Value::from_u64(10));
        // Both lock CASes first answer the advisory abort (paper §3.6).
        kv.abort_next_cas = vec![lock_key(Key(1)), lock_key(Key(2))];
        let mut m = TxnMachine::new(
            token(5),
            TxnOp::Transfer {
                debit: Key(1),
                credit: Key(2),
                amount: 10,
            },
            TxnConfig::default(),
        );
        drive(&mut m, &mut kv);
        assert!(matches!(m.outcome(), Some(TxnReply::Committed { .. })));
        assert_eq!(kv.get(Key(1)).to_u64(), Some(0));
        assert_eq!(kv.get(Key(2)).to_u64(), Some(10));
    }

    #[test]
    fn resume_replays_idempotently_after_transport_loss() {
        let mut kv = MockKv::default();
        kv.map.insert(Key(1), Value::from_u64(50));
        let mut m = TxnMachine::new(
            token(6),
            TxnOp::Transfer {
                debit: Key(1),
                credit: Key(2),
                amount: 20,
            },
            TxnConfig::default(),
        );
        // Let the first lock CAS *apply* but lose its reply: the transport
        // dies right after the server applied the CAS.
        let mut subs = Vec::new();
        m.poll(&mut subs);
        assert_eq!(subs.len(), 1, "locking is sequential");
        let first = subs.remove(0);
        let _applied = kv.serve(&first); // server applied it...
        m.on_reply(first.tag, Reply::NotOperational); // ...but we never saw it.
        assert!(m.in_doubt());

        // Reconnect: resume re-issues the CAS; the mock now answers
        // CasFailed { current: our token }, which the machine accepts.
        m.resume();
        assert!(!m.in_doubt());
        drive(&mut m, &mut kv);
        assert!(matches!(m.outcome(), Some(TxnReply::Committed { .. })));
        assert_eq!(kv.get(Key(1)).to_u64(), Some(30));
        assert_eq!(kv.get(Key(2)).to_u64(), Some(20));
        assert!(kv.get(lock_key(Key(1))).is_empty());
        assert!(kv.get(lock_key(Key(2))).is_empty());
    }

    #[test]
    fn resumed_release_never_frees_anothers_lock() {
        let mut kv = MockKv::default();
        kv.map.insert(Key(1), Value::from_u64(10));
        // Key 2's lock is held by someone else, so the transfer conflicts
        // after acquiring key 1's lock and (budget of one attempt) moves
        // straight to releasing it.
        let rival = TxnToken {
            nonce: 1,
            owner: 99,
            serial: 0,
        };
        kv.map.insert(lock_key(Key(2)), rival.value());
        let mut m = TxnMachine::new(
            token(9),
            TxnOp::Transfer {
                debit: Key(1),
                credit: Key(2),
                amount: 1,
            },
            TxnConfig { max_attempts: 1 },
        );
        let mut subs = Vec::new();
        m.poll(&mut subs);
        let lock1 = subs.remove(0);
        m.on_reply(lock1.tag, kv.serve(&lock1)); // lock 1 acquired
        m.poll(&mut subs);
        let lock2 = subs.remove(0);
        m.on_reply(lock2.tag, kv.serve(&lock2)); // conflict → release lock 1
        m.poll(&mut subs);
        let release = subs.remove(0);
        // The release *applies* but its reply is lost mid-flight.
        let _applied = kv.serve(&release);
        assert!(kv.get(lock_key(Key(1))).is_empty(), "release applied");
        m.on_reply(release.tag, Reply::NotOperational);
        assert!(m.in_doubt());
        // Another coordinator CAS-acquires key 1's lock in the meantime.
        let newcomer = TxnToken {
            nonce: 1,
            owner: 100,
            serial: 0,
        };
        kv.map.insert(lock_key(Key(1)), newcomer.value());
        // Resume replays the release as CAS(our token → empty): it answers
        // CasFailed (read as already-released) and must NOT blindly clear
        // the newcomer's lock.
        m.resume();
        drive(&mut m, &mut kv);
        assert_eq!(m.outcome(), Some(&TxnReply::Aborted(TxnAbort::Conflict)));
        assert_eq!(
            kv.get(lock_key(Key(1))),
            newcomer.value(),
            "the newcomer's lock survives our replayed release"
        );
    }

    #[test]
    fn transfer_credit_overflow_aborts_before_any_write() {
        let mut kv = MockKv::default();
        kv.map.insert(Key(1), Value::from_u64(10));
        kv.map.insert(Key(2), Value::from_u64(u64::MAX));
        let mut m = TxnMachine::new(
            token(10),
            TxnOp::Transfer {
                debit: Key(1),
                credit: Key(2),
                amount: 5,
            },
            TxnConfig::default(),
        );
        drive(&mut m, &mut kv);
        assert_eq!(m.outcome(), Some(&TxnReply::Aborted(TxnAbort::Overflow)));
        assert_eq!(kv.get(Key(1)).to_u64(), Some(10), "debit untouched");
        assert_eq!(kv.get(Key(2)).to_u64(), Some(u64::MAX), "credit untouched");
        assert!(kv.get(lock_key(Key(1))).is_empty(), "locks released");
        assert!(kv.get(lock_key(Key(2))).is_empty());
    }

    #[test]
    fn multiget_duplicates_collapse_to_one_read() {
        let mut kv = MockKv::default();
        kv.map.insert(Key(1), Value::from_u64(7));
        let mut m = TxnMachine::new(
            token(11),
            TxnOp::MultiGet(vec![Key(1), Key(1), Key(2)]),
            TxnConfig::default(),
        );
        drive(&mut m, &mut kv);
        assert_eq!(
            committed_values(&m),
            vec![(Key(1), Value::from_u64(7)), (Key(2), Value::EMPTY)]
        );
    }

    #[test]
    fn invalid_requests_abort_immediately() {
        for op in [
            TxnOp::MultiGet(vec![]),
            TxnOp::MultiPut(vec![(Key(1), Value::EMPTY), (Key(1), Value::from_u64(2))]),
            TxnOp::Transfer {
                debit: Key(3),
                credit: Key(3),
                amount: 1,
            },
            TxnOp::MultiGet(vec![lock_key(Key(1))]),
        ] {
            let mut m = TxnMachine::new(token(7), op.clone(), TxnConfig::default());
            assert_eq!(
                m.outcome(),
                Some(&TxnReply::Aborted(TxnAbort::Invalid)),
                "{op:?}"
            );
            let mut subs = Vec::new();
            m.poll(&mut subs);
            assert!(subs.is_empty(), "invalid txns issue no sub-ops");
        }
    }

    #[test]
    fn locks_are_acquired_in_sorted_order() {
        let mut kv = MockKv::default();
        kv.map.insert(Key(9), Value::from_u64(1));
        let mut m = TxnMachine::new(
            token(8),
            TxnOp::Transfer {
                debit: Key(9),
                credit: Key(2),
                amount: 1,
            },
            TxnConfig::default(),
        );
        let mut subs = Vec::new();
        m.poll(&mut subs);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].key, lock_key(Key(2)), "lowest key locks first");
        m.on_reply(subs[0].tag, kv.serve(&subs[0]));
        subs.clear();
        m.poll(&mut subs);
        assert_eq!(subs[0].key, lock_key(Key(9)));
    }

    #[test]
    fn serializability_checker_accepts_real_and_rejects_fabricated() {
        use hermes_txn_obs_helpers::*;
        // Two sequential transfers over {1,2} funded by a MultiPut.
        let fund = obs(
            0,
            1,
            TxnOp::MultiPut(vec![(Key(1), Value::from_u64(100))]),
            Some(TxnReply::Committed { values: vec![] }),
        );
        let t1 = obs(
            2,
            3,
            TxnOp::Transfer {
                debit: Key(1),
                credit: Key(2),
                amount: 30,
            },
            Some(TxnReply::Committed {
                values: vec![(Key(1), Value::from_u64(100)), (Key(2), Value::from_u64(0))],
            }),
        );
        let t2_good = obs(
            4,
            5,
            TxnOp::Transfer {
                debit: Key(2),
                credit: Key(1),
                amount: 10,
            },
            Some(TxnReply::Committed {
                values: vec![(Key(2), Value::from_u64(30)), (Key(1), Value::from_u64(70))],
            }),
        );
        assert!(check_txns_serializable(&[
            fund.clone(),
            t1.clone(),
            t2_good
        ]));
        // A fabricated prior (key 2 never held 99) must be rejected.
        let t2_bad = obs(
            4,
            5,
            TxnOp::Transfer {
                debit: Key(2),
                credit: Key(1),
                amount: 10,
            },
            Some(TxnReply::Committed {
                values: vec![(Key(2), Value::from_u64(99)), (Key(1), Value::from_u64(70))],
            }),
        );
        assert!(!check_txns_serializable(&[fund, t1, t2_bad]));
    }

    #[test]
    fn serializability_checker_rejects_truncated_snapshots() {
        use hermes_txn_obs_helpers::*;
        let fund = obs(
            0,
            1,
            TxnOp::MultiPut(vec![(Key(1), Value::from_u64(100))]),
            Some(TxnReply::Committed { values: vec![] }),
        );
        let full = obs(
            2,
            3,
            TxnOp::MultiGet(vec![Key(1), Key(2)]),
            Some(TxnReply::Committed {
                values: vec![(Key(1), Value::from_u64(100)), (Key(2), Value::EMPTY)],
            }),
        );
        assert!(check_txns_serializable(&[fund.clone(), full]));
        // A snapshot missing requested keys must not validate vacuously.
        let truncated = obs(
            2,
            3,
            TxnOp::MultiGet(vec![Key(1), Key(2)]),
            Some(TxnReply::Committed { values: vec![] }),
        );
        assert!(!check_txns_serializable(&[fund, truncated]));
    }

    #[test]
    fn serializability_checker_validates_overflow_aborts() {
        use hermes_txn_obs_helpers::*;
        let transfer = TxnOp::Transfer {
            debit: Key(1),
            credit: Key(2),
            amount: 5,
        };
        // With the credit account at u64::MAX, the overflow abort is a
        // consistent committed observation.
        let fund_max = obs(
            0,
            1,
            TxnOp::MultiPut(vec![
                (Key(1), Value::from_u64(10)),
                (Key(2), Value::from_u64(u64::MAX)),
            ]),
            Some(TxnReply::Committed { values: vec![] }),
        );
        let aborted = obs(
            2,
            3,
            transfer.clone(),
            Some(TxnReply::Aborted(TxnAbort::Overflow)),
        );
        assert!(check_txns_serializable(&[fund_max, aborted.clone()]));
        // A fabricated overflow abort (credit nowhere near MAX) is rejected.
        let fund_small = obs(
            0,
            1,
            TxnOp::MultiPut(vec![(Key(1), Value::from_u64(10))]),
            Some(TxnReply::Committed { values: vec![] }),
        );
        assert!(!check_txns_serializable(&[fund_small, aborted]));
    }

    #[test]
    fn serializability_checker_handles_unresolved_partial_effects() {
        use hermes_txn_obs_helpers::*;
        let fund = obs(
            0,
            1,
            TxnOp::MultiPut(vec![
                (Key(1), Value::from_u64(50)),
                (Key(2), Value::from_u64(50)),
            ]),
            Some(TxnReply::Committed { values: vec![] }),
        );
        // An unresolved transfer: may have debited without crediting.
        let crashed = obs(
            2,
            u64::MAX,
            TxnOp::Transfer {
                debit: Key(1),
                credit: Key(2),
                amount: 10,
            },
            None,
        );
        // A later snapshot seeing the *partial* effect is accepted only
        // because the transfer is unresolved.
        let snap = obs(
            10,
            11,
            TxnOp::MultiGet(vec![Key(1), Key(2)]),
            Some(TxnReply::Committed {
                values: vec![(Key(1), Value::from_u64(40)), (Key(2), Value::from_u64(50))],
            }),
        );
        assert!(check_txns_serializable(&[
            fund.clone(),
            crashed.clone(),
            snap
        ]));
        // But a snapshot no subset of its writes can explain is rejected.
        let impossible = obs(
            10,
            11,
            TxnOp::MultiGet(vec![Key(1), Key(2)]),
            Some(TxnReply::Committed {
                values: vec![(Key(1), Value::from_u64(41)), (Key(2), Value::from_u64(50))],
            }),
        );
        assert!(!check_txns_serializable(&[fund, crashed, impossible]));
    }

    #[test]
    fn tokens_from_different_processes_can_never_match() {
        // `TxnToken::new` stamps the per-process nonce: two coordinators
        // whose process-local (owner, serial) counters coincide still
        // mint distinct lock values when their nonces differ — the
        // property mutual exclusion across client processes rests on.
        let ours = TxnToken::new(0, 0);
        assert_eq!(ours.nonce, process_nonce());
        assert_eq!(process_nonce(), process_nonce(), "stable per process");
        let other_process = TxnToken {
            nonce: ours.nonce.wrapping_add(1),
            owner: 0,
            serial: 0,
        };
        assert_ne!(ours.value(), other_process.value());
        // And the nonce really is part of the lock value (24 bytes).
        assert_eq!(ours.value().len(), 24);
    }

    #[test]
    fn leaked_lock_finds_held_records() {
        let keys = [Key(1), Key(2)];
        assert_eq!(leaked_lock(&keys, |_| true), None);
        assert_eq!(
            leaked_lock(&keys, |lk| lk != lock_key(Key(2))),
            Some(lock_key(Key(2)))
        );
    }

    /// Tiny local helper namespace for checker tests.
    mod hermes_txn_obs_helpers {
        use super::super::*;

        pub fn obs(invoke: u64, response: u64, op: TxnOp, reply: Option<TxnReply>) -> TxnObs {
            TxnObs {
                invoke,
                response,
                op,
                reply,
            }
        }
    }
}
