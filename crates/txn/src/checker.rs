//! Transaction-granularity serializability checking.
//!
//! The single-key Wing & Gong checker (`hermes-model`) validates per-key
//! register histories; transactions need the multi-key analogue: is there
//! a total order of the transactions, consistent with real time, in which
//! every committed transaction's *observation* (the balances a `Transfer`
//! saw, the snapshot a `MultiGet` returned) matches a sequential execution
//! over the whole key space? Because every transaction holds all its locks
//! across read, validate and apply, the lock protocol promises strict
//! serializability — this checker is what turns that promise into an
//! executable acceptance gate.
//!
//! The search mirrors `hermes_model::check_linearizable`: a DFS over
//! "which transactions have linearized", pruned by real-time precedence
//! and memoized on `(linearized-set, state)`. State is the full key→u64
//! map (missing = 0, matching the coordinator's empty-reads-as-zero rule).
//! Unresolved (in-doubt) transactions may take effect wholly, partially
//! (a crashed coordinator may have applied only some writes), or not at
//! all; their recorded observation is advisory.

use crate::machine::lock_key;
use hermes_common::{Key, TxnAbort, TxnOp, TxnReply};
use std::collections::{BTreeMap, HashSet};

/// One transaction as observed by the client that issued it.
#[derive(Clone, Debug)]
pub struct TxnObs {
    /// Global clock stamp when the transaction was submitted.
    pub invoke: u64,
    /// Global clock stamp when its completion was observed (`u64::MAX`
    /// for a transaction that never resolved).
    pub response: u64,
    /// The request.
    pub op: TxnOp,
    /// The completion; `None` marks an unresolved (in-doubt) transaction,
    /// which may or may not have taken (partial) effect.
    pub reply: Option<TxnReply>,
}

type State = BTreeMap<u64, u64>;

fn get(state: &State, key: Key) -> u64 {
    state.get(&key.0).copied().unwrap_or(0)
}

/// The writes a transaction applies when it takes effect in `state`.
fn writes_in(op: &TxnOp, state: &State) -> Vec<(Key, u64)> {
    match op {
        TxnOp::MultiGet(_) => Vec::new(),
        TxnOp::MultiPut(puts) => puts
            .iter()
            .map(|(k, v)| (*k, v.to_u64().unwrap_or(0)))
            .collect(),
        TxnOp::Transfer {
            debit,
            credit,
            amount,
        } => {
            let bal = get(state, *debit);
            if bal < *amount {
                return Vec::new(); // Insufficient funds: no effect.
            }
            let Some(credited) = get(state, *credit).checked_add(*amount) else {
                return Vec::new(); // Credit would overflow: no effect.
            };
            vec![(*debit, bal - amount), (*credit, credited)]
        }
    }
}

/// Applies a *committed* transaction to `state`, checking its recorded
/// observation; `None` when the observation is inconsistent with `state`.
fn apply(obs: &TxnObs, state: &State) -> Option<State> {
    let reply = obs.reply.as_ref().expect("committed txns carry a reply");
    match (&obs.op, reply) {
        (TxnOp::MultiGet(_), TxnReply::Committed { values }) => {
            // The committed snapshot must cover exactly the requested
            // keys (sorted, deduped — the coordinator's reply order): a
            // truncated observation is inconsistent, not vacuously valid.
            let keys = obs.op.keys();
            if values.len() != keys.len() {
                return None;
            }
            for ((k, v), want) in values.iter().zip(keys) {
                if *k != want || get(state, *k) != v.to_u64().unwrap_or(0) {
                    return None;
                }
            }
            Some(state.clone())
        }
        (TxnOp::MultiPut(_), TxnReply::Committed { .. }) => {
            let mut next = state.clone();
            for (k, v) in writes_in(&obs.op, state) {
                next.insert(k.0, v);
            }
            Some(next)
        }
        (
            TxnOp::Transfer {
                debit,
                credit,
                amount,
            },
            TxnReply::Committed { values },
        ) => {
            // The committed observation is the pair of prior balances.
            let [(ok_d, pd), (ok_c, pc)] = values.as_slice() else {
                return None;
            };
            if ok_d != debit || ok_c != credit {
                return None;
            }
            let (pd, pc) = (pd.to_u64().unwrap_or(0), pc.to_u64().unwrap_or(0));
            if get(state, *debit) != pd || get(state, *credit) != pc || pd < *amount {
                return None;
            }
            // The coordinator aborts (Overflow) rather than commit a
            // wrapping credit, so a committed observation must not wrap.
            let credited = pc.checked_add(*amount)?;
            let mut next = state.clone();
            next.insert(debit.0, pd - amount);
            next.insert(credit.0, credited);
            Some(next)
        }
        (TxnOp::Transfer { debit, amount, .. }, TxnReply::Aborted(TxnAbort::InsufficientFunds)) => {
            // A funds abort is a committed read of "balance < amount".
            (get(state, *debit) < *amount).then(|| state.clone())
        }
        (TxnOp::Transfer { credit, amount, .. }, TxnReply::Aborted(TxnAbort::Overflow)) => {
            // An overflow abort is a committed read of "credit balance
            // cannot receive amount without wrapping".
            get(state, *credit)
                .checked_add(*amount)
                .is_none()
                .then(|| state.clone())
        }
        _ => None,
    }
}

/// Checks whether `history` is strictly serializable over a key space
/// starting all-zero (the coordinator reads empty keys as 0).
///
/// Rules: transactions with a committed reply (or a funds/overflow abort,
/// which is a committed observation) must linearize exactly once with a
/// consistent observation; conflict/invalid aborts never take effect and
/// are excluded; unresolved transactions (`reply: None`) may apply any subset
/// of their writes — including none — with their observation ignored.
///
/// # Panics
///
/// Panics if more than 63 transactions must linearize (size workloads
/// down, as with the single-key checker), or if an unresolved transaction
/// could write more than 8 keys (the partial-effect branching is 2^writes).
pub fn check_txns_serializable(history: &[TxnObs]) -> bool {
    // Effect-free aborts impose no constraint and are excluded up front.
    // (A `NotOperational` abort is *not* effect-free: a server-side
    // coordinator cut down mid-drive reports it with unknown fate, so it
    // is treated as unresolved below.)
    let ops: Vec<&TxnObs> = history
        .iter()
        .filter(|o| {
            !matches!(
                o.reply,
                Some(TxnReply::Aborted(TxnAbort::Conflict | TxnAbort::Invalid))
            )
        })
        .collect();
    assert!(
        ops.len() <= 63,
        "history too large for the bitmask checker ({} txns)",
        ops.len()
    );
    for o in &ops {
        if !is_resolved(o) {
            assert!(
                o.op.len() <= 8,
                "unresolved txn writes too many keys for subset branching"
            );
        }
    }
    let full: u64 = (1u64 << ops.len()) - 1;
    let mut precedes = vec![0u64; ops.len()];
    for (i, a) in ops.iter().enumerate() {
        for (j, b) in ops.iter().enumerate() {
            if i != j && a.response < b.invoke {
                precedes[j] |= 1 << i;
            }
        }
    }
    let mut seen: HashSet<(u64, Vec<(u64, u64)>)> = HashSet::new();
    dfs(&ops, &precedes, 0, &State::new(), full, &mut seen)
}

/// Whether a transaction's effect is pinned down: committed or observably
/// aborted. Unresolved ones (no reply, or a `NotOperational` abort whose
/// server-side fate is unknown) branch over partial effects.
fn is_resolved(obs: &TxnObs) -> bool {
    !matches!(
        obs.reply,
        None | Some(TxnReply::Aborted(TxnAbort::NotOperational))
    )
}

fn dfs(
    ops: &[&TxnObs],
    precedes: &[u64],
    done: u64,
    state: &State,
    full: u64,
    seen: &mut HashSet<(u64, Vec<(u64, u64)>)>,
) -> bool {
    if done == full {
        return true;
    }
    let snapshot: Vec<(u64, u64)> = state.iter().map(|(&k, &v)| (k, v)).collect();
    if !seen.insert((done, snapshot)) {
        return false;
    }
    for (i, obs) in ops.iter().enumerate() {
        let bit = 1u64 << i;
        if done & bit != 0 || precedes[i] & !done != 0 {
            continue;
        }
        if is_resolved(obs) {
            if let Some(next) = apply(obs, state) {
                if dfs(ops, precedes, done | bit, &next, full, seen) {
                    return true;
                }
            }
        } else {
            // Unresolved: any subset of its writes may have landed.
            let writes = writes_in(&obs.op, state);
            for subset in 0..(1u32 << writes.len()) {
                let mut next = state.clone();
                for (w, (k, v)) in writes.iter().enumerate() {
                    if subset & (1 << w) != 0 {
                        next.insert(k.0, *v);
                    }
                }
                if dfs(ops, precedes, done | bit, &next, full, seen) {
                    return true;
                }
            }
        }
    }
    false
}

/// Finds the first lock record of `keys` that does not read unlocked
/// (`is_unlocked` is given the *lock* key). Harnesses call this after a
/// workload quiesces — a leaked lock means an unresolved coordinator left
/// a key unusable for future transactions.
pub fn leaked_lock(keys: &[Key], mut is_unlocked: impl FnMut(Key) -> bool) -> Option<Key> {
    keys.iter()
        .map(|&k| lock_key(k))
        .find(|&lk| !is_unlocked(lk))
}
