//! The sans-io transaction coordinator state machine.
//!
//! [`TxnMachine`] turns one multi-key [`TxnOp`] into a deterministic
//! sequence of ordinary single-key Hermes operations:
//!
//! 1. **lock** — acquire a CAS lock record per data key, in sorted key
//!    order, in the reserved lock namespace ([`lock_key`]);
//! 2. **read / validate** — read the data keys under lock and validate
//!    (a `Transfer` checks funds); validation failure aborts *before* any
//!    data write;
//! 3. **apply** — write the new values (all locks held, so no concurrent
//!    transaction observes a partial update through the transaction API);
//! 4. **unlock** — CAS every lock record from our token back to empty.
//!
//! The machine is sans-io: it never blocks, sleeps or talks to a socket.
//! [`TxnMachine::poll`] yields [`SubOp`]s to submit; the driver feeds each
//! completion back through [`TxnMachine::on_reply`]; [`TxnMachine::outcome`]
//! reports the final [`TxnReply`]. The same machine therefore runs
//! unchanged inside an in-process client session, over a TCP session, and
//! inside a `hermesd` connection thread.
//!
//! **Recovery.** Every sub-operation is idempotent: the lock CAS is
//! tagged with the transaction's unique token (re-issuing it against a
//! lock we already hold answers `CasFailed { current: token }`, which the
//! machine accepts as acquired), the apply writes are plain
//! last-writer-wins writes of values the machine already fixed, and the
//! unlock is a `CAS(expect: token, new: empty)` whose replay, if the first
//! issue already applied, answers `CasFailed` — read as already-released.
//! The release must be a CAS, never a blind empty write: after our release
//! applies, another coordinator may CAS-acquire the same lock, and a
//! replayed blind write would silently free *that* transaction's lock. A
//! driver whose transport died mid-transaction ([`TxnMachine::in_doubt`])
//! can therefore reconnect and [`TxnMachine::resume`]: the machine
//! re-issues exactly the sub-operations whose replies are missing and the
//! transaction completes (or rolls back) with no partial write left
//! behind.
//!
//! **Abort rules.** Aborts happen only before the apply phase — a lock
//! conflict past the retry budget ([`TxnAbort::Conflict`]), failed
//! validation ([`TxnAbort::InsufficientFunds`],
//! [`TxnAbort::Overflow`]), or a malformed request
//! ([`TxnAbort::Invalid`]) — and always release any locks already held, so
//! an aborted transaction leaves no trace.

use hermes_common::{ClientOp, Key, Reply, RmwOp, TxnAbort, TxnOp, TxnReply, Value};
use std::collections::HashMap;

/// Data keys live below this bit; lock records above it. A transaction on
/// key `k` locks `k | LOCK_BASE`, so the lock namespace never collides
/// with data (the runtime shards lock keys like any other key, which is
/// what lets lock traffic fan across worker lanes).
pub const LOCK_BASE: u64 = 1 << 63;

/// The lock record guarding data key `key`.
pub fn lock_key(key: Key) -> Key {
    Key(key.0 | LOCK_BASE)
}

/// Whether `key` lies in the reserved lock namespace.
pub fn is_lock_key(key: Key) -> bool {
    key.0 & LOCK_BASE != 0
}

/// Globally unique identity of one transaction attempt stream: the lock
/// value a coordinator CASes into each lock record. Uniqueness is what
/// makes the lock CAS idempotent — a replayed acquisition recognises its
/// own token.
///
/// Uniqueness must hold across *processes*, not just within one: client
/// and daemon coordinators both allocate `owner` ids from process-local
/// counters, so the token additionally carries a per-process random
/// [`process_nonce`]. Without it, the first session of two different
/// client processes would mint identical tokens, each would mistake the
/// other's lock for its own (`CasFailed { current == token }` reads as
/// "held"), and two transactions would run under one lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxnToken {
    /// Per-process random salt ([`process_nonce`] in production;
    /// tests may pin it for determinism).
    pub nonce: u64,
    /// The coordinating client (session or daemon connection),
    /// process-locally unique.
    pub owner: u64,
    /// The owner's transaction counter.
    pub serial: u64,
}

impl TxnToken {
    /// A production token: `(owner, serial)` under this process's random
    /// nonce.
    pub fn new(owner: u64, serial: u64) -> Self {
        TxnToken {
            nonce: process_nonce(),
            owner,
            serial,
        }
    }

    /// The 24-byte lock-record value this token writes.
    pub fn value(&self) -> Value {
        let mut bytes = [0u8; 24];
        bytes[..8].copy_from_slice(&self.nonce.to_le_bytes());
        bytes[8..16].copy_from_slice(&self.owner.to_le_bytes());
        bytes[16..].copy_from_slice(&self.serial.to_le_bytes());
        Value::from(bytes.to_vec())
    }
}

/// This process's random transaction-token salt: drawn once per process
/// from the standard library's randomly seeded hasher, salted further
/// with the PID and the wall clock. Makes tokens minted by independent
/// processes (whose `owner` counters all start at zero) collide with
/// probability ~2⁻⁶⁴ instead of ~1.
pub fn process_nonce() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    static NONCE: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
    *NONCE.get_or_init(|| {
        let mut h = std::hash::RandomState::new().build_hasher();
        h.write_u32(std::process::id());
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        h.write_u128(now);
        h.finish()
    })
}

/// Coordinator tuning.
#[derive(Clone, Copy, Debug)]
pub struct TxnConfig {
    /// Lock-phase attempts before the transaction aborts with
    /// [`TxnAbort::Conflict`]. Each attempt releases any locks held and
    /// restarts acquisition from the first key.
    pub max_attempts: u32,
}

impl Default for TxnConfig {
    fn default() -> Self {
        TxnConfig { max_attempts: 8 }
    }
}

/// The jittered pause a driver inserts before submitting a conflict
/// retry's first lock CAS (i.e. whenever [`TxnMachine::attempts`]
/// increases): linear in attempts, with a per-coordinator jitter so
/// colliding coordinators desynchronise instead of re-colliding in
/// lockstep until the retry budget burns out. Both the client-side
/// session driver and the daemon-side connection driver use this, so
/// the two paths pace identically under contention.
pub fn conflict_backoff(attempts: u32, coordinator_id: u64) -> std::time::Duration {
    let step = std::time::Duration::from_micros(200);
    let jitter = std::time::Duration::from_micros(37 * (coordinator_id % 11));
    step * attempts.min(8) + jitter
}

/// One single-key operation the driver must submit on the machine's
/// behalf, identified by a machine-local `tag` echoed through
/// [`TxnMachine::on_reply`].
#[derive(Clone, Debug)]
pub struct SubOp {
    /// Machine-local identifier of this sub-operation.
    pub tag: u64,
    /// Target key (a data key or a lock record).
    pub key: Key,
    /// The single-key operation.
    pub cop: ClientOp,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Acquiring lock `keys[next]` (sorted order; strictly sequential).
    Locking { next: usize },
    /// Reading the data keys under lock (parallel).
    Reading,
    /// Writing the new values (parallel).
    Applying,
    /// Writing every lock record back to empty (parallel).
    Unlocking,
    /// Releasing held locks on the way to a retry or an abort (parallel).
    Releasing {
        retry: bool,
        abort: Option<TxnAbort>,
    },
    /// Finished; [`TxnMachine::outcome`] is set.
    Done,
}

/// The deterministic multi-key transaction coordinator (see the module
/// docs for the protocol).
#[derive(Debug)]
pub struct TxnMachine {
    token: Value,
    op: TxnOp,
    /// Sorted distinct data keys (the lock-acquisition order).
    keys: Vec<Key>,
    cfg: TxnConfig,
    phase: Phase,
    /// Lock-phase attempts consumed (1 = first try).
    attempts: u32,
    next_tag: u64,
    /// Sub-ops produced but not yet drained by [`TxnMachine::poll`].
    queue: Vec<SubOp>,
    /// Sub-ops submitted (drained) whose reply has not arrived.
    inflight: HashMap<u64, (Key, ClientOp)>,
    /// Data keys whose lock we know we hold.
    locked: Vec<Key>,
    /// Values read under lock, by data key.
    reads: HashMap<Key, Value>,
    /// Committed observation reported on success.
    observed: Vec<(Key, Value)>,
    /// Set when a sub-op answered `NotOperational`: the transport is gone
    /// and the driver must [`TxnMachine::resume`] over a fresh one (or
    /// abandon the transaction as in doubt).
    in_doubt: bool,
    outcome: Option<TxnReply>,
}

impl TxnMachine {
    /// Builds the coordinator for one transaction. A malformed request
    /// (no keys, duplicate `MultiPut` keys, a self-transfer, or any key in
    /// the reserved lock namespace) completes immediately as
    /// [`TxnAbort::Invalid`] without issuing a single sub-operation.
    pub fn new(token: TxnToken, op: TxnOp, cfg: TxnConfig) -> Self {
        let keys = op.keys();
        // Duplicates are ambiguous only where the op writes: a MultiPut
        // naming one key twice or a self-transfer. A MultiGet reading a
        // key twice just collapses to one read of it.
        let ambiguous_dup = !matches!(op, TxnOp::MultiGet(_)) && keys.len() != op.len();
        let invalid = keys.is_empty()
            || keys.iter().any(|&k| is_lock_key(k))
            || ambiguous_dup
            || cfg.max_attempts == 0;
        let mut machine = TxnMachine {
            token: token.value(),
            op,
            keys,
            cfg,
            phase: Phase::Done,
            attempts: 1,
            next_tag: 0,
            queue: Vec::new(),
            inflight: HashMap::new(),
            locked: Vec::new(),
            reads: HashMap::new(),
            observed: Vec::new(),
            in_doubt: false,
            outcome: None,
        };
        if invalid {
            machine.outcome = Some(TxnReply::Aborted(TxnAbort::Invalid));
        } else {
            machine.phase = Phase::Locking { next: 0 };
            machine.push_lock_cas(machine.keys[0]);
        }
        machine
    }

    /// The final reply, once the machine reaches it.
    pub fn outcome(&self) -> Option<&TxnReply> {
        self.outcome.as_ref()
    }

    /// Whether a sub-operation came back `NotOperational`: the driver's
    /// transport is gone mid-transaction. [`TxnMachine::resume`] re-issues
    /// the missing sub-operations over a fresh transport.
    pub fn in_doubt(&self) -> bool {
        self.in_doubt
    }

    /// Lock-phase attempts consumed so far (drivers use this for backoff
    /// pacing between conflict retries).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Drains the sub-operations the driver must submit now. Each drained
    /// sub-op is booked as in flight until its reply arrives.
    pub fn poll(&mut self, out: &mut Vec<SubOp>) {
        for sub in &self.queue {
            self.inflight.insert(sub.tag, (sub.key, sub.cop.clone()));
        }
        out.append(&mut self.queue);
    }

    /// Re-issues every submitted-but-unanswered sub-operation (all
    /// sub-operations are idempotent — see the module docs) and clears the
    /// in-doubt flag. Call after reconnecting; a no-op once the outcome is
    /// decided.
    pub fn resume(&mut self) {
        if self.outcome.is_some() {
            return;
        }
        self.in_doubt = false;
        let pending: Vec<(Key, ClientOp)> = self.inflight.drain().map(|(_, v)| v).collect();
        for (key, cop) in pending {
            self.push(key, cop);
        }
    }

    fn push(&mut self, key: Key, cop: ClientOp) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.queue.push(SubOp { tag, key, cop });
    }

    fn push_lock_cas(&mut self, data_key: Key) {
        let cas = ClientOp::Rmw(RmwOp::CompareAndSwap {
            expect: Value::EMPTY,
            new: self.token.clone(),
        });
        self.push(lock_key(data_key), cas);
    }

    /// Releases `data_key`'s lock with `CAS(expect: token, new: empty)` —
    /// never a blind empty write, which on a resume replay could free a
    /// lock another coordinator acquired after our release applied.
    fn push_unlock_cas(&mut self, data_key: Key) {
        let cas = ClientOp::Rmw(RmwOp::CompareAndSwap {
            expect: self.token.clone(),
            new: Value::EMPTY,
        });
        self.push(lock_key(data_key), cas);
    }

    /// Feeds one completion back. Tags not issued by this machine (late
    /// completions of a superseded attempt) are ignored.
    pub fn on_reply(&mut self, tag: u64, reply: Reply) {
        let Some((key, cop)) = self.inflight.remove(&tag) else {
            return;
        };
        if matches!(reply, Reply::NotOperational) {
            // Transport gone: keep the sub-op booked so a later resume
            // re-issues it (idempotently) over a fresh transport.
            self.inflight.insert(tag, (key, cop));
            self.in_doubt = true;
            return;
        }
        let consumed = match self.phase {
            Phase::Locking { next } => self.on_lock_reply(next, key, reply),
            Phase::Reading => self.on_read_reply(key, reply),
            Phase::Applying => self.on_write_reply(reply),
            Phase::Unlocking | Phase::Releasing { .. } => self.on_unlock_reply(key, reply),
            Phase::Done => true,
        };
        if !consumed {
            // An unexpected reply type for this phase (e.g. a version-
            // skewed server): keep the sub-op booked like the
            // NotOperational path, so a resume can still re-issue it —
            // dropping it would leave the machine permanently
            // unresolvable (nothing to replay, no outcome).
            self.inflight.insert(tag, (key, cop));
            self.in_doubt = true;
        }
    }

    fn on_lock_reply(&mut self, next: usize, key: Key, reply: Reply) -> bool {
        debug_assert!(is_lock_key(key), "lock phase completes lock keys");
        match reply {
            Reply::RmwOk { .. } => self.lock_acquired(next),
            Reply::CasFailed { current } if current == self.token => {
                // A replay of our own acquisition (resume path): held.
                self.lock_acquired(next)
            }
            Reply::CasFailed { .. } => self.lock_conflict(),
            Reply::RmwAborted => {
                // The CAS lost a protocol-level race and *probably* had no
                // effect — but an aborted RMW may still be replayed to
                // completion (paper §3.6), so re-issue until the outcome
                // is definitive: RmwOk / our own token ⇒ held, another
                // token ⇒ conflict (and then our CAS can no longer commit,
                // since at most one of the concurrent CASes does).
                self.push_lock_cas(Key(key.0 & !LOCK_BASE));
            }
            _ => return false,
        }
        true
    }

    fn lock_acquired(&mut self, next: usize) {
        self.locked.push(self.keys[next]);
        let next = next + 1;
        if next < self.keys.len() {
            self.phase = Phase::Locking { next };
            self.push_lock_cas(self.keys[next]);
            return;
        }
        // All locks held.
        match &self.op {
            TxnOp::MultiPut(_) => self.start_apply(),
            TxnOp::MultiGet(_) | TxnOp::Transfer { .. } => {
                self.phase = Phase::Reading;
                let keys = self.keys.clone();
                for key in keys {
                    self.push(key, ClientOp::Read);
                }
            }
        }
    }

    fn lock_conflict(&mut self) {
        let out_of_attempts = self.attempts >= self.cfg.max_attempts;
        let abort = out_of_attempts.then_some(TxnAbort::Conflict);
        if self.locked.is_empty() {
            self.after_release(abort);
        } else {
            self.phase = Phase::Releasing {
                retry: !out_of_attempts,
                abort,
            };
            let held: Vec<Key> = self.locked.clone();
            for key in held {
                self.push_unlock_cas(key);
            }
        }
    }

    fn on_read_reply(&mut self, key: Key, reply: Reply) -> bool {
        match reply {
            Reply::ReadOk(v) => {
                self.reads.insert(key, v);
            }
            _ => return false,
        }
        if !self.inflight.is_empty() || !self.queue.is_empty() {
            return true;
        }
        // Snapshot complete: validate and compute.
        match self.op.clone() {
            TxnOp::MultiGet(_) => {
                self.observed = self
                    .keys
                    .iter()
                    .map(|k| (*k, self.reads.get(k).cloned().unwrap_or(Value::EMPTY)))
                    .collect();
                self.start_unlock();
            }
            TxnOp::Transfer {
                debit,
                credit,
                amount,
            } => {
                let debit_bal = self.balance(debit);
                let credit_bal = self.balance(credit);
                if debit_bal < amount {
                    self.abort_releasing(TxnAbort::InsufficientFunds);
                    return true;
                }
                if credit_bal.checked_add(amount).is_none() {
                    // A wrapping credit would silently destroy funds;
                    // abort before any data write instead.
                    self.abort_releasing(TxnAbort::Overflow);
                    return true;
                }
                self.observed = vec![
                    (debit, Value::from_u64(debit_bal)),
                    (credit, Value::from_u64(credit_bal)),
                ];
                self.start_apply();
            }
            TxnOp::MultiPut(_) => unreachable!("MultiPut skips the read phase"),
        }
        true
    }

    fn balance(&self, key: Key) -> u64 {
        self.reads.get(&key).and_then(Value::to_u64).unwrap_or(0)
    }

    /// The data writes of the apply phase (fixed once validation passed).
    fn pending_writes(&self) -> Vec<(Key, Value)> {
        match &self.op {
            TxnOp::MultiPut(puts) => puts.clone(),
            TxnOp::Transfer {
                debit,
                credit,
                amount,
            } => {
                let debit_bal = self
                    .observed
                    .first()
                    .and_then(|(_, v)| v.to_u64())
                    .unwrap_or(0);
                let credit_bal = self
                    .observed
                    .get(1)
                    .and_then(|(_, v)| v.to_u64())
                    .unwrap_or(0);
                // Validation already checked funds and overflow, so plain
                // arithmetic cannot wrap here.
                vec![
                    (*debit, Value::from_u64(debit_bal - amount)),
                    (*credit, Value::from_u64(credit_bal + amount)),
                ]
            }
            TxnOp::MultiGet(_) => Vec::new(),
        }
    }

    fn start_apply(&mut self) {
        self.phase = Phase::Applying;
        for (key, value) in self.pending_writes() {
            self.push(key, ClientOp::Write(value));
        }
    }

    fn on_write_reply(&mut self, reply: Reply) -> bool {
        if !matches!(reply, Reply::WriteOk) {
            return false;
        }
        if self.inflight.is_empty() && self.queue.is_empty() {
            self.start_unlock();
        }
        true
    }

    fn start_unlock(&mut self) {
        self.phase = Phase::Unlocking;
        let keys = self.keys.clone();
        for key in keys {
            self.push_unlock_cas(key);
        }
    }

    fn abort_releasing(&mut self, abort: TxnAbort) {
        self.phase = Phase::Releasing {
            retry: false,
            abort: Some(abort),
        };
        let held: Vec<Key> = self.locked.clone();
        for key in held {
            self.push_unlock_cas(key);
        }
    }

    fn on_unlock_reply(&mut self, key: Key, reply: Reply) -> bool {
        debug_assert!(is_lock_key(key), "unlock phase completes lock keys");
        match reply {
            // Our CAS(token → empty) applied: released.
            Reply::RmwOk { .. } => {}
            // A failed CAS never matches its expectation, so the record no
            // longer carries our token: our release already applied (a
            // resume replay) and the record is empty — or another
            // coordinator has since re-acquired it, in which case leaving
            // it untouched is exactly the point of the CAS.
            Reply::CasFailed { .. } => {}
            Reply::RmwAborted => {
                // Advisory abort (paper §3.6): the CAS may still be
                // replayed to completion — re-issue until definitive.
                self.push_unlock_cas(Key(key.0 & !LOCK_BASE));
                return true;
            }
            _ => return false,
        }
        if !self.inflight.is_empty() || !self.queue.is_empty() {
            return true;
        }
        match self.phase {
            Phase::Unlocking => {
                self.phase = Phase::Done;
                self.outcome = Some(TxnReply::Committed {
                    values: std::mem::take(&mut self.observed),
                });
            }
            Phase::Releasing { retry, abort } => {
                self.locked.clear();
                self.after_release(if retry {
                    None
                } else {
                    abort.or(Some(TxnAbort::Conflict))
                });
            }
            _ => unreachable!("unlock replies only in unlock/release phases"),
        }
        true
    }

    /// Locks all released after a conflict or validation failure: retry
    /// from scratch or finish with the abort.
    fn after_release(&mut self, abort: Option<TxnAbort>) {
        if let Some(abort) = abort {
            self.phase = Phase::Done;
            self.outcome = Some(TxnReply::Aborted(abort));
            return;
        }
        self.attempts += 1;
        self.locked.clear();
        self.reads.clear();
        self.phase = Phase::Locking { next: 0 };
        self.push_lock_cas(self.keys[0]);
    }
}
