//! Shared client-side harness: drive pipelined sessions while recording an
//! invocation/response history, then hand it to the linearizability
//! checker.
//!
//! Used by the TCP cluster integration test and the multi-process
//! `examples/tcp_cluster.rs` harness — the acceptance gate of the transport
//! subsystem is that a real concurrent-session history (in-process or
//! across OS processes) passes `hermes-model`'s Wing & Gong checker.
//!
//! Timestamps come from one shared atomic counter, so real-time precedence
//! across client threads is captured exactly (an operation that responded
//! before another was invoked must be ordered before it).

use hermes_common::{ClientOp, Key, Reply, RmwOp, TxnOp, Value};
use hermes_model::{check_linearizable, HistoryOp, OpKind, Outcome};
use hermes_replica::{ClientSession, SessionChannel, Ticket, TxnResult};
use hermes_txn::TxnObs;
use std::sync::atomic::{AtomicU64, Ordering};

/// One operation as observed by the client that issued it.
#[derive(Clone, Debug)]
pub struct RecordedOp {
    /// Key the operation targeted.
    pub key: Key,
    /// Global clock stamp when the operation was submitted.
    pub invoke: u64,
    /// Global clock stamp when its reply was observed.
    pub response: u64,
    /// Checker vocabulary for what the operation did.
    pub kind: OpKind,
    /// Whether the effect is certain or indeterminate (timeout/abort).
    pub outcome: Outcome,
}

/// Turns a reply into the checker's vocabulary. `Value::to_u64` maps the
/// empty (never-written) value to `None`, the checker's initial state.
/// Harness workloads issue u64-valued writes, fetch-add RMWs and
/// compare-and-swap RMWs.
pub fn observe(cop: &ClientOp, reply: Reply) -> (OpKind, Outcome) {
    match (cop, reply) {
        (ClientOp::Rmw(RmwOp::CompareAndSwap { expect, new }), Reply::RmwOk { .. }) => (
            OpKind::CasOk {
                expect: expect.to_u64().expect("harness CAS u64 payloads"),
                new: new.to_u64().expect("harness CAS u64 payloads"),
            },
            Outcome::Completed,
        ),
        (ClientOp::Rmw(RmwOp::CompareAndSwap { expect, .. }), Reply::CasFailed { current }) => (
            OpKind::CasFailed {
                expect: expect.to_u64().expect("harness CAS u64 payloads"),
                current: current.to_u64(),
            },
            Outcome::Completed,
        ),
        // An aborted CAS may still be replayed to completion elsewhere
        // (paper §3.6): indeterminate — it either installed `new` or did
        // nothing, which is exactly CasOk under unconstrained application.
        (ClientOp::Rmw(RmwOp::CompareAndSwap { expect, new }), _) => (
            OpKind::CasOk {
                expect: expect.to_u64().expect("harness CAS u64 payloads"),
                new: new.to_u64().expect("harness CAS u64 payloads"),
            },
            Outcome::Indeterminate,
        ),
        (ClientOp::Read, Reply::ReadOk(v)) => (
            OpKind::Read {
                returned: v.to_u64(),
            },
            Outcome::Completed,
        ),
        (ClientOp::Write(v), Reply::WriteOk) => (
            OpKind::Write {
                value: v.to_u64().expect("harness writes u64 payloads"),
            },
            Outcome::Completed,
        ),
        (ClientOp::Rmw(RmwOp::FetchAdd { delta }), Reply::RmwOk { prior }) => (
            OpKind::FetchAdd {
                delta: *delta,
                prior: prior.to_u64(),
            },
            Outcome::Completed,
        ),
        // An aborted RMW may still be replayed to completion by another
        // replica (paper §3.6), so it must be modelled as indeterminate.
        (ClientOp::Rmw(RmwOp::FetchAdd { delta }), Reply::RmwAborted) => (
            OpKind::FetchAdd {
                delta: *delta,
                prior: None,
            },
            Outcome::Indeterminate,
        ),
        // Timeouts/shutdown: unknown effect.
        (ClientOp::Write(v), _) => (
            OpKind::Write {
                value: v.to_u64().expect("harness writes u64 payloads"),
            },
            Outcome::Indeterminate,
        ),
        (ClientOp::Read, _) => (OpKind::Read { returned: None }, Outcome::Indeterminate),
        (ClientOp::Rmw(RmwOp::FetchAdd { delta }), _) => (
            OpKind::FetchAdd {
                delta: *delta,
                prior: None,
            },
            Outcome::Indeterminate,
        ),
    }
}

/// Drives `ops` operations through `session` with up to `depth` in flight,
/// cycling writes (unique values), reads and fetch-add RMWs over `keys`
/// keys, and records every invocation/response against the shared `clock`.
///
/// `sid` salts keys and write values so concurrent sessions collide on
/// keys (that is the point) but never write identical values.
pub fn run_recorded_session<C: SessionChannel>(
    session: &mut ClientSession<C>,
    clock: &AtomicU64,
    sid: u64,
    keys: u64,
    ops: u64,
    depth: usize,
) -> Vec<RecordedOp> {
    let mut observed = Vec::with_capacity(ops as usize);
    // (ticket, key, op, invoke-stamp) for operations still in flight.
    let mut pending: Vec<(Ticket, Key, ClientOp, u64)> = Vec::new();
    let mut issued = 0u64;
    while issued < ops || !pending.is_empty() {
        // Fill the pipeline.
        while issued < ops && pending.len() < depth {
            let key = Key((issued + sid) % keys);
            let cop = match issued % 3 {
                0 => ClientOp::Write(Value::from_u64(1 + sid * 1_000_000 + issued)),
                1 => ClientOp::Read,
                _ => ClientOp::Rmw(RmwOp::FetchAdd { delta: 1 }),
            };
            let invoke = clock.fetch_add(1, Ordering::SeqCst);
            let ticket = session.submit(key, cop.clone());
            pending.push((ticket, key, cop, invoke));
            issued += 1;
        }
        // Collect one completion (out of order across keys).
        let Some((done, reply)) = session.wait_any() else {
            // Service gone: mark the remainder indeterminate and stop.
            for (_, key, cop, invoke) in pending.drain(..) {
                let response = clock.fetch_add(1, Ordering::SeqCst);
                let (kind, outcome) = observe(&cop, Reply::NotOperational);
                observed.push(RecordedOp {
                    key,
                    invoke,
                    response,
                    kind,
                    outcome,
                });
            }
            break;
        };
        let response = clock.fetch_add(1, Ordering::SeqCst);
        let at = pending
            .iter()
            .position(|(t, _, _, _)| *t == done)
            .expect("completion matches a pending ticket");
        let (_, key, cop, invoke) = pending.swap_remove(at);
        let (kind, outcome) = observe(&cop, reply);
        observed.push(RecordedOp {
            key,
            invoke,
            response,
            kind,
            outcome,
        });
    }
    observed
}

/// Checks every per-key sub-history of `all` with the Wing & Gong checker
/// (Hermes registers are independent per key).
///
/// # Errors
///
/// Names the first non-linearizable key, or a key whose history exceeds
/// the checker's 63-op bound (size the workload down instead).
pub fn check_linearizable_per_key(all: &[RecordedOp], keys: u64) -> Result<(), String> {
    for k in 0..keys {
        let history: Vec<HistoryOp> = all
            .iter()
            .filter(|o| o.key == Key(k))
            .map(|o| HistoryOp {
                invoke: o.invoke,
                response: o.response,
                kind: o.kind.clone(),
                outcome: o.outcome,
            })
            .collect();
        if history.len() > 63 {
            return Err(format!(
                "key {k}: {} ops exceed the bitmask checker's bound",
                history.len()
            ));
        }
        if !check_linearizable(&history) {
            return Err(format!(
                "key {k}: history of {} ops is not linearizable",
                history.len()
            ));
        }
    }
    Ok(())
}

/// Records one multi-key transaction as a transaction-granularity history
/// event ([`TxnObs`], checked by
/// [`hermes_txn::check_txns_serializable`]): the recorder's analogue of
/// [`observe`] one level up — a whole transaction is one operation whose
/// observation is its committed values.
///
/// `invoke` must be stamped from the shared clock *before* the
/// transaction was submitted; the response is stamped here. An in-doubt
/// result records as unresolved (`reply: None`, open response window): it
/// may have taken partial effect, and the checker branches over that.
pub fn observe_txn(op: &TxnOp, result: &TxnResult, invoke: u64, clock: &AtomicU64) -> TxnObs {
    let reply = result.as_reply();
    let response = if reply.is_some() {
        clock.fetch_add(1, Ordering::SeqCst)
    } else {
        u64::MAX
    };
    TxnObs {
        invoke,
        response,
        op: op.clone(),
        reply,
    }
}
