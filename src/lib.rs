//! # hermes — a full reproduction of the Hermes replication protocol
//!
//! This crate is the front door to a from-scratch Rust reproduction of
//! *"Hermes: a Fast, Fault-Tolerant and Linearizable Replication Protocol"*
//! (Katsarakis et al., ASPLOS 2020): the protocol itself, every substrate it
//! depends on, the baselines it is evaluated against, and a harness that
//! regenerates the paper's evaluation. See `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! The pieces (each re-exported as a module below):
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `hermes-core` | the Hermes protocol state machine (§3) |
//! | [`common`] | `hermes-common` | ids, values, views, the `ReplicaProtocol` trait |
//! | [`baselines`] | `hermes-baselines` | rZAB, rCRAQ, CR, ABD, lock-step SMR (§5.1) |
//! | [`replica`] | `hermes-replica` | simulated + threaded cluster runtimes (§4) |
//! | [`membership`] | `hermes-membership` | leases, Paxos, reliable membership (§2.4) |
//! | [`store`] | `hermes-store` | seqlock CRCW key-value store (§4.1) |
//! | [`wings`] | `hermes-wings` | batching / credit / codec messaging layer (§4.2) |
//! | [`net`] | `hermes-net` | simulated and in-process datagram networks |
//! | [`sim`] | `hermes-sim` | discrete-event kernel, RNG, histograms |
//! | [`workload`] | `hermes-workload` | uniform/zipfian YCSB-style workloads (§5.2) |
//! | [`model`] | `hermes-model` | model checker + linearizability checker (§3.2) |
//! | [`txn`] | `hermes-txn` | cross-shard multi-key transactions over single-key Hermes (§7) |
//! | [`obs`] | `hermes-obs` | metrics registry, phase tracing, leveled logging (§9) |
//!
//! # Quickstart
//!
//! Run a real multi-threaded 5-replica Hermes cluster in-process:
//!
//! ```
//! use hermes::prelude::*;
//!
//! let cluster = ThreadCluster::start(5, ProtocolConfig::default());
//! assert_eq!(cluster.write(0, Key(7), Value::from_u64(1)), Reply::WriteOk);
//! // Linearizable local reads at every replica:
//! for node in 0..5 {
//!     assert_eq!(cluster.read(node, Key(7)), Reply::ReadOk(Value::from_u64(1)));
//! }
//! cluster.shutdown();
//! ```
//!
//! More: `examples/quickstart.rs`, `examples/lock_service.rs`,
//! `examples/fault_tolerance.rs`, `examples/figure4_trace.rs`,
//! `examples/ycsb_sweep.rs`.

#![warn(missing_docs)]

pub mod harness;

pub use hermes_baselines as baselines;
pub use hermes_common as common;
pub use hermes_core as core;
pub use hermes_membership as membership;
pub use hermes_model as model;
pub use hermes_net as net;
pub use hermes_obs as obs;
pub use hermes_replica as replica;
pub use hermes_sim as sim;
pub use hermes_store as store;
pub use hermes_txn as txn;
pub use hermes_wings as wings;
pub use hermes_workload as workload;

/// The types most programs need, in one import.
pub mod prelude {
    pub use hermes_common::{
        ClientOp, Effect, Epoch, Key, MembershipView, NodeId, NodeSet, OpId, ReplicaProtocol,
        Reply, RmwOp, ShardRouter, ShardSpec, TxnAbort, TxnOp, TxnReply, Value,
    };
    pub use hermes_core::{HermesNode, KeyState, Msg, ProtocolConfig, Ts, UpdateKind};
    pub use hermes_membership::RmConfig;
    pub use hermes_obs::{Histogram, HistogramSnapshot, Quantiles};
    pub use hermes_replica::{
        query_metrics, query_stats, query_traces, remote_txn, request_shutdown, run_sim,
        ClientSession, ClusterConfig, CostModel, MembershipOptions, MembershipStatus, NodeOptions,
        NodeRuntime, NodeStats, PendingTxn, RemoteChannel, RunReport, SessionChannel, SessionEvent,
        ShardedEngine, SimConfig, ThreadCluster, Ticket, TxnResult,
    };
    pub use hermes_txn::{check_txns_serializable, lock_key, TxnConfig, TxnMachine, TxnObs};
    pub use hermes_workload::{
        run_closed_loop, BankConfig, BankWorkload, ClosedLoopConfig, ClosedLoopReport, PipelinedKv,
        Workload, WorkloadConfig,
    };
}
