//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate (the workspace builds without network access — see DESIGN.md §0).
//!
//! Wraps `std::sync` locks behind `parking_lot`'s poison-free API: `lock()`,
//! `read()` and `write()` return guards directly instead of `Result`s. A
//! poisoned std lock (a panic while held) is recovered by taking the inner
//! guard, which matches `parking_lot`'s behaviour of not propagating panics
//! through lock acquisition.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s poison-free interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s poison-free interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(sync::TryLockError::Poisoned(e)) => {
                f.debug_tuple("RwLock").field(&&*e.into_inner()).finish()
            }
            Err(sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
