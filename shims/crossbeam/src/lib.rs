//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate (the workspace builds without network access — see DESIGN.md §0).
//!
//! Provides [`channel`]: an unbounded MPMC channel with crossbeam's API shape
//! — cloneable, `Sync` senders *and* receivers, `Result`-based error
//! reporting with explicit disconnection. Built on a `Mutex<VecDeque>` plus
//! `Condvar`, which is slower than crossbeam's lock-free queues but
//! semantically equivalent for the workloads in this workspace.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atomic {
    //! Atomic cells over arbitrary `Copy` types.

    use std::fmt;
    use std::sync::Mutex;

    /// A thread-safe mutable cell, like upstream `AtomicCell`.
    ///
    /// Upstream specializes to hardware atomics for small types and falls
    /// back to striped spinlocks otherwise; this shim always takes the lock,
    /// which is slower but has the same (sequentially consistent per-cell)
    /// semantics.
    pub struct AtomicCell<T> {
        value: Mutex<T>,
    }

    impl<T: Copy> AtomicCell<T> {
        /// Creates a cell holding `value`.
        pub fn new(value: T) -> Self {
            AtomicCell {
                value: Mutex::new(value),
            }
        }

        /// Returns a copy of the current value.
        pub fn load(&self) -> T {
            *self.value.lock().unwrap_or_else(|e| e.into_inner())
        }

        /// Replaces the current value.
        pub fn store(&self, value: T) {
            *self.value.lock().unwrap_or_else(|e| e.into_inner()) = value;
        }

        /// Replaces the current value, returning the previous one.
        pub fn swap(&self, value: T) -> T {
            let mut guard = self.value.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::replace(&mut *guard, value)
        }
    }

    impl<T> fmt::Debug for AtomicCell<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("AtomicCell { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn load_store_swap() {
            let c = AtomicCell::new((1u64, 2u64));
            assert_eq!(c.load(), (1, 2));
            c.store((3, 4));
            assert_eq!(c.swap((5, 6)), (3, 4));
            assert_eq!(c.load(), (5, 6));
        }
    }
}

pub mod channel {
    //! Unbounded multi-producer multi-consumer FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Creates an unbounded channel, returning the sending and receiving halves.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        // Like upstream: no `T: Debug` bound, the payload is elided.
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// All senders disconnected and the channel is drained.
        Disconnected,
    }

    /// The sending half of a channel; cloneable and shareable across threads.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            self.inner
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(msg);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake any blocked receivers so they can
                // observe disconnection.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half of a channel; cloneable (MPMC) and shareable.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Receiver<T> {
        fn disconnected(&self) -> bool {
            self.inner.senders.load(Ordering::SeqCst) == 0
        }

        /// Dequeues a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(msg) => Ok(msg),
                None if self.disconnected() => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeues a message, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.disconnected() {
                    return Err(RecvError);
                }
                q = self.inner.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues a message, blocking up to `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.disconnected() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .inner
                    .ready
                    .wait_timeout(q, left)
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.try_recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn cross_thread_recv_timeout() {
            let (tx, rx) = unbounded();
            let h = thread::spawn(move || tx.send(42).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            h.join().unwrap();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn drop_all_senders_disconnects() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn timeout_expires() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
