//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! This workspace builds without network access, so instead of the crates.io
//! `bytes` it uses this shim, which exposes exactly the API surface the
//! workspace needs with the same semantics:
//!
//! * [`Bytes`] — an immutable, cheaply cloneable byte buffer. Clones share
//!   the backing allocation (`Arc`), matching upstream's zero-copy clone
//!   guarantee that Hermes' early value propagation relies on.
//! * [`BytesMut`] — a growable buffer that [freezes](BytesMut::freeze) into
//!   [`Bytes`].
//! * [`BufMut`] — the subset of the buffer-writing trait used by the codec
//!   and batching layers (little-endian puts and raw slices).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer; clones are shallow.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer (no allocation).
    #[inline]
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a static slice without copying.
    #[inline]
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Copies `data` into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    /// The buffer contents as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "{}", std::ascii::escape_default(b))?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    #[inline]
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with at least `capacity` bytes preallocated.
    #[inline]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Number of bytes written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BytesMut")
            .field("len", &self.0.len())
            .finish()
    }
}

/// The subset of the upstream `BufMut` trait used by this workspace:
/// appending fixed-width little-endian integers and raw slices.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a raw slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.0.push(v);
    }
    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn freeze_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u16_le(0x0203);
        m.put_u32_le(7);
        m.put_u64_le(9);
        m.put_slice(b"xy");
        assert_eq!(m.len(), 1 + 2 + 4 + 8 + 2);
        let frozen = m.freeze();
        assert_eq!(&frozen[..3], &[1, 3, 2]);
    }

    #[test]
    fn static_and_copied_compare_equal() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
        assert!(Bytes::new().is_empty());
    }
}
