//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! crate (the workspace builds without network access — see DESIGN.md §0).
//!
//! Implements the API subset used by `crates/bench/benches/micro.rs`:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical pipeline it
//! runs a short calibration pass, then measures a fixed wall-clock budget and
//! prints mean ns/op — enough to compare substrate costs across commits,
//! not a rigorous confidence interval.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::time::{Duration, Instant};

/// Per-measurement time budget.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);

/// Hint for how costly batched inputs are to set up; accepted and ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Routine input is small; large batches.
    SmallInput,
    /// Routine input is large; small batches.
    LargeInput,
    /// One input per routine call.
    PerIteration,
}

/// The benchmark driver handed to each `criterion_group!` function.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// A driver whose name filter comes from the command line (the first
    /// non-flag argument, as passed by `cargo bench -- <filter>`).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "benches");
        Criterion { filter }
    }

    /// Runs (or skips, if filtered out) one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher::default();
        f(&mut b);
        match b.report {
            Some((iters, elapsed)) => {
                let ns = elapsed.as_nanos() as f64 / iters as f64;
                println!("{name:<40} {ns:>12.1} ns/op   ({iters} iters)");
            }
            None => println!("{name:<40} {:>12} (no measurement)", "-"),
        }
        self
    }
}

/// Measures a single benchmark routine.
#[derive(Debug, Default)]
pub struct Bencher {
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine` in a loop.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: how many iterations fit in ~1ms?
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || n >= 1 << 24 {
                let per_ms = n.max(1);
                let target = (MEASURE_BUDGET.as_millis() as u64).max(1) * per_ms
                    / elapsed.as_millis().max(1) as u64;
                n = target.clamp(1, 1 << 28);
                break;
            }
            n *= 4;
        }
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.report = Some((n, start.elapsed()));
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < MEASURE_BUDGET && iters < 1 << 20 {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.report = Some((iters.max(1), total));
    }
}

/// Declares a benchmark group: a function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_reports() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        let (iters, _) = b.report.expect("measured");
        assert!(iters >= 1);
    }

    #[test]
    fn bench_function_filter() {
        let mut c = Criterion {
            filter: Some("nomatch-xyz".into()),
        };
        // Routine would hang the test if not filtered out; a cheap one is fine.
        c.bench_function("other/name", |b| b.iter(|| ()));
    }
}
