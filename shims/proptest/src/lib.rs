//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate (the workspace builds without network access — see DESIGN.md §0).
//!
//! Implements the subset of proptest's API used by this workspace's property
//! tests: the [`Strategy`] trait with [`prop_map`](Strategy::prop_map),
//! ranges / tuples / [`Just`] / [`any`] / [`collection::vec`] strategies, the
//! [`prop_oneof!`] weighted-union macro, and the [`proptest!`] test macro.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the panic message (every generated value must be `Debug` upstream too),
//!   but no minimal counterexample search is attempted.
//! * **Deterministic.** Each test's RNG is seeded from the test name and the
//!   case index, so failures reproduce exactly across runs; set
//!   `PROPTEST_SEED` to an integer to explore a different schedule space.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::marker::PhantomData;
use std::ops::Range;

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The random source handed to strategies; splitmix64.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// An RNG deterministically derived from a test name and case index
    /// (plus the optional `PROPTEST_SEED` environment override).
    pub fn deterministic(test_name: &str, case: u64) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        if let Some(env) = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
        {
            seed ^= env.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
        TestRng(seed ^ case.wrapping_mul(0xd134_2543_de82_ef95))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy (upstream `Strategy::boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`].
pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

/// Object-safe subset of [`Strategy`]; blanket-implemented.
pub trait DynStrategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().generate_dyn(rng)
    }
}

/// Strategy that always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted union of boxed strategies, as built by [`prop_oneof!`].
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union; panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.generate_dyn(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights sum to total")
    }
}

impl<V> std::fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

/// Types with a canonical full-domain strategy (upstream `Arbitrary`).
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        })*
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// Strategy over the full domain of `T` (upstream `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        })*
    };
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: lengths in `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-import access to the common names, like upstream's prelude.
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng, Union,
    };
}

/// Weighted choice between strategies producing the same value type.
///
/// Arms are either all `weight => strategy` or all bare `strategy`
/// (weight 1), matching the upstream macro's accepted forms in this
/// workspace.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

/// Asserts inside a property; identical to `assert!` here (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property; identical to `assert_eq!` here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property; identical to `assert_ne!` here.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::deterministic(test_name, case as u64);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges", 0);
        for _ in 0..1000 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let u = (10usize..11).generate(&mut rng);
            assert_eq!(u, 10);
        }
    }

    #[test]
    fn union_honours_weights() {
        let s = prop_oneof![
            1 => Just(0u8),
            9 => Just(1u8),
        ];
        let mut rng = TestRng::deterministic("weights", 1);
        let ones: u32 = (0..1000).map(|_| s.generate(&mut rng) as u32).sum();
        assert!(ones > 700, "expected ~900 ones, got {ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn vec_lengths_in_range(v in collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..10, 0u32..10).prop_map(|(a, b)| (a, a + b)),
            flag in any::<bool>(),
        ) {
            prop_assert!(pair.1 >= pair.0);
            prop_assert_eq!(flag as u32 <= 1, true);
        }
    }
}
